//! The interpreter's typed heap: named integer scalars and dense row-major
//! integer arrays.
//!
//! The mini-C language is integer-only (`int` scalars, `int` arrays of any
//! rank), so one value type suffices.  Both engines execute against a
//! [`Heap`]; the differential harness compares final heaps with [`Heap::diff`],
//! whose output is deterministic because both maps are ordered.

use std::collections::BTreeMap;

/// A dense, row-major integer array with explicit extents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayVal {
    /// Extent of each dimension (rank = `dims.len()`).
    pub dims: Vec<usize>,
    /// Row-major element storage; `data.len() == dims.iter().product()`.
    pub data: Vec<i64>,
}

impl ArrayVal {
    /// A zero-filled array of the given extents.
    pub fn zeros(dims: Vec<usize>) -> ArrayVal {
        let len = dims.iter().product();
        ArrayVal {
            dims,
            data: vec![0; len],
        }
    }

    /// A 1-D array holding the given values.
    pub fn from_vec(data: Vec<i64>) -> ArrayVal {
        ArrayVal {
            dims: vec![data.len()],
            data,
        }
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major flat offset of `indices`, or `None` when any index is
    /// negative or out of its extent (rank mismatches are the caller's to
    /// check against `dims.len()`).
    pub fn flat_index(&self, indices: &[i64]) -> Option<usize> {
        row_major_flat(&self.dims, indices)
    }
}

/// Row-major flat offset of `indices` within `dims`; `None` when the rank
/// differs or any index is negative or out of its extent.  The single
/// source of indexing truth for both the heap and the shared worker views.
pub fn row_major_flat(dims: &[usize], indices: &[i64]) -> Option<usize> {
    if indices.len() != dims.len() {
        return None;
    }
    let mut flat = 0usize;
    for (&idx, &extent) in indices.iter().zip(dims) {
        if idx < 0 || idx as usize >= extent {
            return None;
        }
        flat = flat * extent + idx as usize;
    }
    Some(flat)
}

/// Program state: scalar and array bindings by name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Heap {
    /// Integer scalars.
    pub scalars: BTreeMap<String, i64>,
    /// Integer arrays.
    pub arrays: BTreeMap<String, ArrayVal>,
}

impl Heap {
    /// An empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Binds a scalar (builder style).
    pub fn with_scalar(mut self, name: impl Into<String>, v: i64) -> Heap {
        self.scalars.insert(name.into(), v);
        self
    }

    /// Binds a 1-D array (builder style).
    pub fn with_array(mut self, name: impl Into<String>, data: Vec<i64>) -> Heap {
        self.arrays.insert(name.into(), ArrayVal::from_vec(data));
        self
    }

    /// Human-readable differences between two heaps (empty when equal):
    /// scalar mismatches, shape mismatches, and the first few differing
    /// elements per array.
    pub fn diff(&self, other: &Heap) -> Vec<String> {
        const MAX_ELEMS_PER_ARRAY: usize = 3;
        let mut out = Vec::new();
        let scalar_names: std::collections::BTreeSet<&String> =
            self.scalars.keys().chain(other.scalars.keys()).collect();
        for name in scalar_names {
            match (self.scalars.get(name), other.scalars.get(name)) {
                (Some(a), Some(b)) if a != b => out.push(format!("scalar {name}: {a} != {b}")),
                (Some(a), None) => out.push(format!("scalar {name}: {a} != <absent>")),
                (None, Some(b)) => out.push(format!("scalar {name}: <absent> != {b}")),
                _ => {}
            }
        }
        let array_names: std::collections::BTreeSet<&String> =
            self.arrays.keys().chain(other.arrays.keys()).collect();
        for name in array_names {
            match (self.arrays.get(name), other.arrays.get(name)) {
                (Some(a), Some(b)) => {
                    if a.dims != b.dims {
                        out.push(format!("array {name}: dims {:?} != {:?}", a.dims, b.dims));
                        continue;
                    }
                    let mut shown = 0;
                    let mut differing = 0usize;
                    for (i, (x, y)) in a.data.iter().zip(&b.data).enumerate() {
                        if x != y {
                            differing += 1;
                            if shown < MAX_ELEMS_PER_ARRAY {
                                out.push(format!("array {name}[{i}]: {x} != {y}"));
                                shown += 1;
                            }
                        }
                    }
                    if differing > shown {
                        out.push(format!(
                            "array {name}: {} more differing element(s)",
                            differing - shown
                        ));
                    }
                }
                (Some(a), None) => out.push(format!("array {name}: {:?} != <absent>", a.dims)),
                (None, Some(b)) => out.push(format!("array {name}: <absent> != {:?}", b.dims)),
                (None, None) => unreachable!(),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_indexing_is_row_major_and_bounds_checked() {
        let a = ArrayVal::zeros(vec![3, 4]);
        assert_eq!(a.len(), 12);
        assert_eq!(a.flat_index(&[0, 0]), Some(0));
        assert_eq!(a.flat_index(&[1, 0]), Some(4));
        assert_eq!(a.flat_index(&[2, 3]), Some(11));
        assert_eq!(a.flat_index(&[3, 0]), None);
        assert_eq!(a.flat_index(&[0, 4]), None);
        assert_eq!(a.flat_index(&[-1, 0]), None);
        assert_eq!(a.flat_index(&[0]), None);
        assert!(ArrayVal::zeros(vec![0]).is_empty());
    }

    #[test]
    fn diff_reports_scalars_arrays_and_shapes() {
        let a = Heap::new()
            .with_scalar("n", 4)
            .with_array("x", vec![1, 2, 3]);
        let same = a.clone();
        assert!(a.diff(&same).is_empty());

        let b = Heap::new()
            .with_scalar("n", 5)
            .with_array("x", vec![1, 9, 3]);
        let d = a.diff(&b);
        assert!(d.iter().any(|m| m.contains("scalar n: 4 != 5")));
        assert!(d.iter().any(|m| m.contains("array x[1]: 2 != 9")));

        let c = Heap::new().with_array("x", vec![1, 2]);
        let d = a.diff(&c);
        assert!(d.iter().any(|m| m.contains("scalar n: 4 != <absent>")));
        assert!(d.iter().any(|m| m.contains("dims")));
    }

    #[test]
    fn diff_truncates_long_element_lists() {
        let a = Heap::new().with_array("x", vec![0; 100]);
        let b = Heap::new().with_array("x", vec![1; 100]);
        let d = a.diff(&b);
        assert!(d.len() <= 5);
        assert!(d.iter().any(|m| m.contains("more differing")));
    }
}
