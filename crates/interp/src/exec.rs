//! The tree-walking execution core: one statement walker, pluggable stores,
//! and the serial / parallel engines built on it.
//!
//! Design: evaluation and statement execution are written once, generic over
//! a [`Store`] (where scalar and array accesses land) and a [`LoopPolicy`]
//! (what happens when a `for` loop is reached).  The combinations in use:
//!
//! | engine              | store                    | policy              |
//! |---------------------|--------------------------|---------------------|
//! | serial reference    | whole heap               | never dispatch      |
//! | parallel spine      | whole heap (+ inspector) | dispatch proven loops |
//! | parallel worker     | shared arrays + private scalars | never dispatch |
//! | input discovery     | growable recording heap  | never dispatch      |
//!
//! The parallel engine dispatches exactly the loops the compile-time
//! analysis proved parallel ([`ParallelizationReport::outermost_parallel_loops`]):
//! iterations are spread over `ss_runtime` threads, array writes go straight
//! into the shared heap (disjointness is what the analysis proved — the same
//! justification as the hand-written kernels in `ss-npb`), scalars are
//! privatized per worker and merged back by last-writing iteration, which
//! reproduces serial semantics exactly for loops whose scalars are
//! write-before-read (a precondition of the parallel verdict).

use crate::heap::{ArrayVal, Heap};
use ss_ir::ast::{AExpr, AssignOp, BinOp, LoopId, Stmt, UnOp};
use ss_ir::Program;
use ss_parallelizer::ParallelizationReport;
use ss_runtime::{parallel_for_schedule, Schedule};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Mutex;
use std::time::Instant;

/// A runtime failure of the interpreted program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// An array was accessed that the heap does not contain.
    UndefinedArray(String),
    /// An array was accessed with the wrong number of subscripts.
    ArityMismatch {
        /// The array.
        array: String,
        /// Its rank.
        expected: usize,
        /// Subscripts supplied.
        got: usize,
    },
    /// A subscript fell outside the array's extents (or was negative).
    OutOfBounds {
        /// The array.
        array: String,
        /// The offending subscript vector.
        indices: Vec<i64>,
        /// The array's extents.
        dims: Vec<usize>,
    },
    /// Division or remainder by zero (or `i64::MIN / -1`).
    DivisionByZero,
    /// A loop exceeded the iteration cap (runaway `while`, zero step, …).
    NonTerminating {
        /// The loop.
        loop_id: LoopId,
        /// The cap it exceeded.
        cap: u64,
    },
    /// An array was declared inside a parallel worker (loop-local arrays are
    /// not supported in dispatched bodies; such loops fall back to serial).
    ArrayDeclInWorker(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UndefinedArray(a) => write!(f, "undefined array '{a}'"),
            ExecError::ArityMismatch {
                array,
                expected,
                got,
            } => write!(
                f,
                "array '{array}' has rank {expected} but was subscripted with {got} index(es)"
            ),
            ExecError::OutOfBounds {
                array,
                indices,
                dims,
            } => write!(
                f,
                "subscript {indices:?} out of bounds for '{array}' with extents {dims:?}"
            ),
            ExecError::DivisionByZero => write!(f, "division by zero"),
            ExecError::NonTerminating { loop_id, cap } => {
                write!(f, "loop {loop_id} exceeded {cap} iterations")
            }
            ExecError::ArrayDeclInWorker(a) => {
                write!(f, "array '{a}' declared inside a parallel loop body")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Where scalar and array accesses land during execution.
pub(crate) trait Store {
    /// Reads a scalar; undefined scalars read as 0 (C-style zero init, and
    /// it keeps discovery, serial and worker behavior identical).
    fn scalar(&mut self, name: &str) -> i64;
    /// Writes a scalar, creating it if needed.
    fn set_scalar(&mut self, name: &str, v: i64);
    /// Reads one array element.
    fn read_elem(&mut self, array: &str, indices: &[i64]) -> Result<i64, ExecError>;
    /// Writes one array element.
    fn write_elem(&mut self, array: &str, indices: &[i64], v: i64) -> Result<(), ExecError>;
    /// Declares an array with the given extents (zero-filled).
    fn declare_array(&mut self, name: &str, dims: Vec<usize>) -> Result<(), ExecError>;
    /// Called when a serially executed `for` loop is entered.
    fn loop_enter(&mut self, _id: LoopId) {}
    /// Called before each iteration of a serially executed `for` loop.
    fn loop_iter(&mut self, _id: LoopId, _iter: usize) {}
    /// Called when the loop exits; an inspecting store returns whether the
    /// observed accesses were free of cross-iteration conflicts.
    fn loop_exit(&mut self, _id: LoopId) -> Option<bool> {
        None
    }
}

/// How a loop was executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Ran on one thread.
    #[default]
    Serial,
    /// Dispatched onto worker threads.
    Parallel {
        /// Worker count.
        threads: usize,
        /// True under chunk-stealing (dynamic) scheduling.
        dynamic: bool,
    },
}

/// Accumulated execution facts for one loop.
#[derive(Debug, Clone, Default)]
pub struct LoopStats {
    /// Times the loop was entered.
    pub invocations: u64,
    /// Total iterations across invocations.
    pub iterations: u64,
    /// Wall-clock seconds inside the loop (nested loop time included).
    pub seconds: f64,
    /// How the loop ran (last invocation).
    pub mode: ExecMode,
    /// For serial loops run under the inspector baseline: whether a runtime
    /// inspector would have licensed parallel execution (AND over
    /// invocations); `None` when not inspected.
    pub inspector_conflict_free: Option<bool>,
}

/// Execution statistics for one engine run.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Per-loop statistics (only loops executed at the spine level; loops
    /// inside dispatched bodies are accounted to their dispatched ancestor).
    pub loops: BTreeMap<LoopId, LoopStats>,
    /// Wall-clock seconds for the whole program.
    pub total_seconds: f64,
}

impl ExecStats {
    /// Loops that were dispatched to threads in this run.
    pub fn parallel_loops(&self) -> Vec<LoopId> {
        self.loops
            .iter()
            .filter(|(_, s)| matches!(s.mode, ExecMode::Parallel { .. }))
            .map(|(id, _)| *id)
            .collect()
    }

    fn record(&mut self, id: LoopId, iterations: u64, seconds: f64, mode: ExecMode) {
        let s = self.loops.entry(id).or_default();
        s.invocations += 1;
        s.iterations += iterations;
        s.seconds += seconds;
        s.mode = mode;
    }

    fn record_inspection(&mut self, id: LoopId, conflict_free: bool) {
        let s = self.loops.entry(id).or_default();
        s.inspector_conflict_free =
            Some(s.inspector_conflict_free.unwrap_or(true) && conflict_free);
    }
}

/// Result of an engine run: the final heap plus statistics.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Program state after execution.
    pub heap: Heap,
    /// Per-loop and total timing/mode facts.
    pub stats: ExecStats,
}

/// Which schedule the parallel engine uses for dispatched loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScheduleChoice {
    /// Static for uniform iteration spaces, dynamic for skewed ones (loops
    /// whose nested bounds go through an index array, the CSR row shape).
    #[default]
    Auto,
    /// Always static chunking.
    Static,
    /// Always dynamic (chunk-stealing).
    Dynamic,
}

/// Knobs of the parallel engine.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker threads for dispatched loops.
    pub threads: usize,
    /// Scheduling of dispatched loops.
    pub schedule: ScheduleChoice,
    /// Run the runtime-inspector baseline on loops the compile-time analysis
    /// left serial, recording whether an inspector/executor scheme would
    /// have parallelized them (see [`LoopStats::inspector_conflict_free`]).
    pub baseline_inspector: bool,
    /// Loops with fewer iterations than this run serially (dispatch would
    /// cost more than it buys).
    pub min_parallel_trip: usize,
    /// Iteration cap per loop invocation, against runaway `while` loops.
    pub while_cap: u64,
}

impl Default for ExecOptions {
    fn default() -> ExecOptions {
        ExecOptions {
            threads: ss_runtime::hardware_threads(),
            schedule: ScheduleChoice::Auto,
            baseline_inspector: false,
            min_parallel_trip: 2,
            while_cap: 100_000_000,
        }
    }
}

// ---------------------------------------------------------------------------
// Expression evaluation (C semantics: wrapping arithmetic, 0/1 booleans,
// short-circuit && and ||, truncating division).
// ---------------------------------------------------------------------------

pub(crate) fn eval<S: Store>(st: &mut S, e: &AExpr) -> Result<i64, ExecError> {
    match e {
        AExpr::IntLit(v) => Ok(*v),
        AExpr::Var(name) => Ok(st.scalar(name)),
        AExpr::Index(array, idx_exprs) => {
            let mut idxs = Vec::with_capacity(idx_exprs.len());
            for ie in idx_exprs {
                idxs.push(eval(st, ie)?);
            }
            st.read_elem(array, &idxs)
        }
        AExpr::Binary(op, a, b) => {
            // Short-circuit operators first.
            match op {
                BinOp::And => {
                    return Ok(if eval(st, a)? != 0 && eval(st, b)? != 0 {
                        1
                    } else {
                        0
                    })
                }
                BinOp::Or => {
                    return Ok(if eval(st, a)? != 0 || eval(st, b)? != 0 {
                        1
                    } else {
                        0
                    })
                }
                _ => {}
            }
            let x = eval(st, a)?;
            let y = eval(st, b)?;
            Ok(match op {
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                BinOp::Mul => x.wrapping_mul(y),
                BinOp::Div => x.checked_div(y).ok_or(ExecError::DivisionByZero)?,
                BinOp::Mod => x.checked_rem(y).ok_or(ExecError::DivisionByZero)?,
                BinOp::Lt => (x < y) as i64,
                BinOp::Le => (x <= y) as i64,
                BinOp::Gt => (x > y) as i64,
                BinOp::Ge => (x >= y) as i64,
                BinOp::Eq => (x == y) as i64,
                BinOp::Ne => (x != y) as i64,
                BinOp::And | BinOp::Or => unreachable!("handled above"),
            })
        }
        AExpr::Unary(op, a) => {
            let x = eval(st, a)?;
            Ok(match op {
                UnOp::Neg => x.wrapping_neg(),
                UnOp::Not => (x == 0) as i64,
            })
        }
    }
}

fn compare(op: BinOp, a: i64, b: i64) -> bool {
    match op {
        BinOp::Lt => a < b,
        BinOp::Le => a <= b,
        BinOp::Gt => a > b,
        BinOp::Ge => a >= b,
        BinOp::Eq => a == b,
        BinOp::Ne => a != b,
        // The parser only produces comparison exit tests; treat anything
        // else as an immediately false condition rather than panicking.
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// The statement walker.
// ---------------------------------------------------------------------------

/// Borrowed view of a `Stmt::For`'s parts, handed to loop policies.
pub(crate) struct ForLoop<'p> {
    pub id: LoopId,
    pub var: &'p str,
    pub init: &'p AExpr,
    pub cond_op: BinOp,
    pub bound: &'p AExpr,
    pub step: &'p AExpr,
    pub body: &'p [Stmt],
}

/// Decides what happens when the walker reaches a `for` loop.
pub(crate) trait LoopPolicy<S: Store> {
    /// Returns `Ok(true)` if the loop was fully executed by the policy
    /// (e.g. dispatched in parallel); `Ok(false)` to run it serially.
    fn try_dispatch(
        &mut self,
        st: &mut S,
        f: &ForLoop<'_>,
        env: &mut ExecEnv<'_>,
    ) -> Result<bool, ExecError>;
}

/// Policy that never dispatches (serial engine, workers, discovery).
pub(crate) struct NoDispatch;

impl<S: Store> LoopPolicy<S> for NoDispatch {
    fn try_dispatch(
        &mut self,
        _st: &mut S,
        _f: &ForLoop<'_>,
        _env: &mut ExecEnv<'_>,
    ) -> Result<bool, ExecError> {
        Ok(false)
    }
}

/// Walker state shared down the recursion.
pub(crate) struct ExecEnv<'a> {
    pub stats: &'a mut ExecStats,
    /// Record per-loop wall times (off inside workers: the dispatching spine
    /// times the whole loop instead).
    pub timing: bool,
    pub while_cap: u64,
}

pub(crate) fn exec_stmts<S: Store, P: LoopPolicy<S>>(
    st: &mut S,
    stmts: &[Stmt],
    pol: &mut P,
    env: &mut ExecEnv<'_>,
) -> Result<(), ExecError> {
    for s in stmts {
        exec_stmt(st, s, pol, env)?;
    }
    Ok(())
}

fn exec_stmt<S: Store, P: LoopPolicy<S>>(
    st: &mut S,
    s: &Stmt,
    pol: &mut P,
    env: &mut ExecEnv<'_>,
) -> Result<(), ExecError> {
    match s {
        Stmt::Decl { name, dims, init } => {
            if dims.is_empty() {
                let v = match init {
                    Some(e) => eval(st, e)?,
                    None => 0,
                };
                st.set_scalar(name, v);
            } else {
                let mut extents = Vec::with_capacity(dims.len());
                for d in dims {
                    let v = eval(st, d)?;
                    extents.push(v.max(0) as usize);
                }
                st.declare_array(name, extents)?;
            }
            Ok(())
        }
        Stmt::Assign { target, op, value } => {
            let rhs = eval(st, value)?;
            if target.is_scalar() {
                let v = match op {
                    AssignOp::Assign => rhs,
                    AssignOp::AddAssign => st.scalar(&target.name).wrapping_add(rhs),
                    AssignOp::SubAssign => st.scalar(&target.name).wrapping_sub(rhs),
                    AssignOp::MulAssign => st.scalar(&target.name).wrapping_mul(rhs),
                };
                st.set_scalar(&target.name, v);
            } else {
                let mut idxs = Vec::with_capacity(target.indices.len());
                for ie in &target.indices {
                    idxs.push(eval(st, ie)?);
                }
                let v = match op {
                    AssignOp::Assign => rhs,
                    AssignOp::AddAssign => st.read_elem(&target.name, &idxs)?.wrapping_add(rhs),
                    AssignOp::SubAssign => st.read_elem(&target.name, &idxs)?.wrapping_sub(rhs),
                    AssignOp::MulAssign => st.read_elem(&target.name, &idxs)?.wrapping_mul(rhs),
                };
                st.write_elem(&target.name, &idxs, v)?;
            }
            Ok(())
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            if eval(st, cond)? != 0 {
                exec_stmts(st, then_branch, pol, env)
            } else {
                exec_stmts(st, else_branch, pol, env)
            }
        }
        Stmt::For {
            id,
            var,
            init,
            cond_op,
            bound,
            step,
            body,
            ..
        } => {
            let f = ForLoop {
                id: *id,
                var,
                init,
                cond_op: *cond_op,
                bound,
                step,
                body,
            };
            if pol.try_dispatch(st, &f, env)? {
                return Ok(());
            }
            let start = env.timing.then(Instant::now);
            st.loop_enter(*id);
            let v0 = eval(st, init)?;
            st.set_scalar(var, v0);
            let mut iter: u64 = 0;
            loop {
                let v = st.scalar(var);
                let b = eval(st, bound)?;
                if !compare(*cond_op, v, b) {
                    break;
                }
                if iter >= env.while_cap {
                    return Err(ExecError::NonTerminating {
                        loop_id: *id,
                        cap: env.while_cap,
                    });
                }
                st.loop_iter(*id, iter as usize);
                exec_stmts(st, body, pol, env)?;
                let sv = eval(st, step)?;
                let cur = st.scalar(var);
                st.set_scalar(var, cur.wrapping_add(sv));
                iter += 1;
            }
            let verdict = st.loop_exit(*id);
            let seconds = start.map(|t| t.elapsed().as_secs_f64()).unwrap_or(0.0);
            if env.timing {
                env.stats.record(*id, iter, seconds, ExecMode::Serial);
            }
            if let Some(conflict_free) = verdict {
                env.stats.record_inspection(*id, conflict_free);
            }
            Ok(())
        }
        Stmt::While { id, cond, body } => {
            let start = env.timing.then(Instant::now);
            let mut iter: u64 = 0;
            while eval(st, cond)? != 0 {
                if iter >= env.while_cap {
                    return Err(ExecError::NonTerminating {
                        loop_id: *id,
                        cap: env.while_cap,
                    });
                }
                exec_stmts(st, body, pol, env)?;
                iter += 1;
            }
            if let Some(t) = start {
                env.stats
                    .record(*id, iter, t.elapsed().as_secs_f64(), ExecMode::Serial);
            }
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// Stores.
// ---------------------------------------------------------------------------

/// Store over the whole heap, optionally recording accesses for the
/// inspector baseline.
pub(crate) struct HeapStore<'h> {
    pub heap: &'h mut Heap,
    inspector: Option<InspectorRec>,
}

impl<'h> HeapStore<'h> {
    pub fn new(heap: &'h mut Heap, inspect: bool) -> HeapStore<'h> {
        HeapStore {
            heap,
            inspector: inspect.then(InspectorRec::default),
        }
    }

    fn note(&mut self, array: &str, indices: &[i64], write: bool) {
        if let Some(rec) = &mut self.inspector {
            rec.note(array, indices, write);
        }
    }

    /// Marks every active inspector frame blind: a loop is about to run on
    /// worker threads whose array accesses the recording cannot see.
    fn mark_frames_blind(&mut self) {
        if let Some(rec) = &mut self.inspector {
            for frame in &mut rec.frames {
                frame.blind = true;
            }
        }
    }
}

/// Cross-iteration conflict recording: what a runtime inspector would see.
/// One frame per (nested) serially-executed loop; a frame flags a conflict
/// when an element is touched from two different iterations and at least one
/// touch is a write.
#[derive(Default)]
struct InspectorRec {
    frames: Vec<InspectorFrame>,
}

struct InspectorFrame {
    id: LoopId,
    iter: usize,
    seen: HashMap<(String, Vec<i64>), (usize, bool)>,
    conflict: bool,
    overflow: bool,
    /// A parallel loop was dispatched while this frame was active: worker
    /// array accesses bypass the recording, so no verdict can be given.
    blind: bool,
}

/// Above this many distinct elements per loop invocation the recording stops
/// and the verdict becomes "not licensed" (an unbounded inspector would be
/// unrealistic anyway).
const INSPECTOR_ELEMENT_CAP: usize = 1 << 21;

impl InspectorRec {
    fn note(&mut self, array: &str, indices: &[i64], write: bool) {
        for frame in &mut self.frames {
            if frame.conflict || frame.overflow || frame.blind {
                continue;
            }
            if frame.seen.len() >= INSPECTOR_ELEMENT_CAP {
                frame.overflow = true;
                continue;
            }
            let key = (array.to_string(), indices.to_vec());
            match frame.seen.get_mut(&key) {
                Some((first_iter, wrote)) => {
                    if *first_iter != frame.iter && (write || *wrote) {
                        frame.conflict = true;
                    }
                    *wrote = *wrote || write;
                }
                None => {
                    frame.seen.insert(key, (frame.iter, write));
                }
            }
        }
    }
}

impl Store for HeapStore<'_> {
    fn scalar(&mut self, name: &str) -> i64 {
        self.heap.scalars.get(name).copied().unwrap_or(0)
    }

    fn set_scalar(&mut self, name: &str, v: i64) {
        // Fast path without the String allocation: loop counters are
        // rewritten every iteration.
        match self.heap.scalars.get_mut(name) {
            Some(slot) => *slot = v,
            None => {
                self.heap.scalars.insert(name.to_string(), v);
            }
        }
    }

    fn read_elem(&mut self, array: &str, indices: &[i64]) -> Result<i64, ExecError> {
        self.note(array, indices, false);
        let a = self
            .heap
            .arrays
            .get(array)
            .ok_or_else(|| ExecError::UndefinedArray(array.to_string()))?;
        elem_at(array, a, indices).map(|flat| a.data[flat])
    }

    fn write_elem(&mut self, array: &str, indices: &[i64], v: i64) -> Result<(), ExecError> {
        self.note(array, indices, true);
        let a = self
            .heap
            .arrays
            .get_mut(array)
            .ok_or_else(|| ExecError::UndefinedArray(array.to_string()))?;
        let flat = elem_at(array, a, indices)?;
        a.data[flat] = v;
        Ok(())
    }

    fn declare_array(&mut self, name: &str, dims: Vec<usize>) -> Result<(), ExecError> {
        self.heap
            .arrays
            .insert(name.to_string(), ArrayVal::zeros(dims));
        Ok(())
    }

    fn loop_enter(&mut self, id: LoopId) {
        if let Some(rec) = &mut self.inspector {
            rec.frames.push(InspectorFrame {
                id,
                iter: 0,
                seen: HashMap::new(),
                conflict: false,
                overflow: false,
                blind: false,
            });
        }
    }

    fn loop_iter(&mut self, id: LoopId, iter: usize) {
        if let Some(rec) = &mut self.inspector {
            if let Some(frame) = rec.frames.last_mut() {
                debug_assert_eq!(frame.id, id);
                frame.iter = iter;
            }
        }
    }

    fn loop_exit(&mut self, id: LoopId) -> Option<bool> {
        let rec = self.inspector.as_mut()?;
        let frame = rec.frames.pop()?;
        debug_assert_eq!(frame.id, id);
        if frame.blind {
            return None;
        }
        Some(!frame.conflict && !frame.overflow)
    }
}

fn elem_at(name: &str, a: &ArrayVal, indices: &[i64]) -> Result<usize, ExecError> {
    if indices.len() != a.dims.len() {
        return Err(ExecError::ArityMismatch {
            array: name.to_string(),
            expected: a.dims.len(),
            got: indices.len(),
        });
    }
    a.flat_index(indices).ok_or_else(|| ExecError::OutOfBounds {
        array: name.to_string(),
        indices: indices.to_vec(),
        dims: a.dims.clone(),
    })
}

/// Raw views of every heap array, shareable across worker threads.
struct SharedArrays {
    map: HashMap<String, SharedArray>,
}

struct SharedArray {
    /// `*mut i64` of the array's storage, smuggled as usize for `Send`.
    ptr: usize,
    dims: Vec<usize>,
    len: usize,
}

// SAFETY: workers only access disjoint elements (the property the
// compile-time analysis proved before the loop was dispatched); the Vec
// storage itself is neither grown nor freed while workers run.
unsafe impl Sync for SharedArrays {}

impl SharedArrays {
    fn capture(heap: &mut Heap) -> SharedArrays {
        let map = heap
            .arrays
            .iter_mut()
            .map(|(name, a)| {
                (
                    name.clone(),
                    SharedArray {
                        ptr: a.data.as_mut_ptr() as usize,
                        dims: a.dims.clone(),
                        len: a.data.len(),
                    },
                )
            })
            .collect();
        SharedArrays { map }
    }

    fn flat(&self, array: &str, indices: &[i64]) -> Result<(usize, usize), ExecError> {
        let a = self
            .map
            .get(array)
            .ok_or_else(|| ExecError::UndefinedArray(array.to_string()))?;
        if indices.len() != a.dims.len() {
            return Err(ExecError::ArityMismatch {
                array: array.to_string(),
                expected: a.dims.len(),
                got: indices.len(),
            });
        }
        let flat = crate::heap::row_major_flat(&a.dims, indices).ok_or_else(|| {
            ExecError::OutOfBounds {
                array: array.to_string(),
                indices: indices.to_vec(),
                dims: a.dims.clone(),
            }
        })?;
        debug_assert!(flat < a.len);
        Ok((a.ptr, flat))
    }
}

/// Per-worker store: shared arrays, private scalar environment.  Each
/// scalar entry carries the (global) iteration of its last write — or `None`
/// for snapshot values never written by this worker — so the spine can
/// merge the serially-last value back.
struct WorkerStore<'s> {
    shared: &'s SharedArrays,
    scalars: HashMap<String, (i64, Option<usize>)>,
    current_iter: usize,
}

impl Store for WorkerStore<'_> {
    fn scalar(&mut self, name: &str) -> i64 {
        self.scalars.get(name).map(|&(v, _)| v).unwrap_or(0)
    }

    fn set_scalar(&mut self, name: &str, v: i64) {
        let iter = self.current_iter;
        match self.scalars.get_mut(name) {
            Some(slot) => *slot = (v, Some(iter)),
            None => {
                self.scalars.insert(name.to_string(), (v, Some(iter)));
            }
        }
    }

    fn read_elem(&mut self, array: &str, indices: &[i64]) -> Result<i64, ExecError> {
        let (ptr, flat) = self.shared.flat(array, indices)?;
        // SAFETY: flat is bounds-checked above; disjointness across workers
        // is the dispatched loop's proven property.
        Ok(unsafe { *(ptr as *const i64).add(flat) })
    }

    fn write_elem(&mut self, array: &str, indices: &[i64], v: i64) -> Result<(), ExecError> {
        let (ptr, flat) = self.shared.flat(array, indices)?;
        // SAFETY: as above.
        unsafe {
            *(ptr as *mut i64).add(flat) = v;
        }
        Ok(())
    }

    fn declare_array(&mut self, name: &str, _dims: Vec<usize>) -> Result<(), ExecError> {
        Err(ExecError::ArrayDeclInWorker(name.to_string()))
    }
}

// ---------------------------------------------------------------------------
// The parallel dispatch policy.
// ---------------------------------------------------------------------------

struct ParallelDispatch<'r> {
    dispatchable: &'r HashSet<LoopId>,
    opts: &'r ExecOptions,
}

impl LoopPolicy<HeapStore<'_>> for ParallelDispatch<'_> {
    fn try_dispatch(
        &mut self,
        st: &mut HeapStore<'_>,
        f: &ForLoop<'_>,
        env: &mut ExecEnv<'_>,
    ) -> Result<bool, ExecError> {
        if !self.dispatchable.contains(&f.id) || self.opts.threads <= 1 {
            return Ok(false);
        }
        if body_declares_array(f.body) {
            // Loop-local arrays would need per-worker allocation + merge;
            // run such loops serially (the catalogue has none).
            return Ok(false);
        }
        // Materialize the iteration space.  Loop bound and step of a proven
        // parallel loop are invariant under its body (a loop rewriting its
        // own bound has a dependence the range test rejects), so evaluating
        // them once up front matches serial semantics.
        let v0 = eval(st, f.init)?;
        let bound = eval(st, f.bound)?;
        let step = eval(st, f.step)?;
        let mut values = Vec::new();
        let mut v = v0;
        while compare(f.cond_op, v, bound) {
            if values.len() as u64 >= env.while_cap {
                return Err(ExecError::NonTerminating {
                    loop_id: f.id,
                    cap: env.while_cap,
                });
            }
            values.push(v);
            v = v.wrapping_add(step);
            if step == 0 {
                return Err(ExecError::NonTerminating {
                    loop_id: f.id,
                    cap: env.while_cap,
                });
            }
        }
        let exit_value = v;
        let n = values.len();
        if n < self.opts.min_parallel_trip {
            return Ok(false);
        }

        st.mark_frames_blind();
        let start = Instant::now();
        let threads = self.opts.threads;
        let schedule = match self.opts.schedule {
            ScheduleChoice::Static => Schedule::Static,
            ScheduleChoice::Dynamic => Schedule::dynamic_for(n, threads),
            ScheduleChoice::Auto => {
                if body_is_skewed(f.body) {
                    Schedule::dynamic_for(n, threads)
                } else {
                    Schedule::Static
                }
            }
        };
        let dynamic = matches!(schedule, Schedule::Dynamic { .. });

        let snapshot: HashMap<String, (i64, Option<usize>)> = st
            .heap
            .scalars
            .iter()
            .map(|(k, v)| (k.clone(), (*v, None)))
            .collect();
        let shared = SharedArrays::capture(st.heap);
        let while_cap = env.while_cap;
        type ChunkResult = (Result<(), ExecError>, HashMap<String, (usize, i64)>);
        let results: Mutex<Vec<ChunkResult>> = Mutex::new(Vec::new());

        parallel_for_schedule(threads, n, schedule, |range| {
            let mut ws = WorkerStore {
                shared: &shared,
                scalars: snapshot.clone(),
                current_iter: 0,
            };
            let mut scratch_stats = ExecStats::default();
            let mut wenv = ExecEnv {
                stats: &mut scratch_stats,
                timing: false,
                while_cap,
            };
            let mut res = Ok(());
            for k in range {
                ws.current_iter = k;
                ws.set_scalar(f.var, values[k]);
                if let Err(e) = exec_stmts(&mut ws, f.body, &mut NoDispatch, &mut wenv) {
                    res = Err(e);
                    break;
                }
            }
            let merged: HashMap<String, (usize, i64)> = ws
                .scalars
                .into_iter()
                .filter_map(|(name, (value, iter))| iter.map(|it| (name, (it, value))))
                .collect();
            results.lock().unwrap().push((res, merged));
        });

        let chunks = results.into_inner().unwrap();
        if let Some((Err(e), _)) = chunks.iter().find(|(r, _)| r.is_err()) {
            return Err(e.clone());
        }
        // Merge scalars by last-writing iteration: for write-before-read
        // (privatizable) scalars — the only kind a proven-parallel body may
        // write — this reproduces the serial final values exactly.
        let mut final_writes: BTreeMap<&String, (usize, i64)> = BTreeMap::new();
        for (_, writes) in &chunks {
            for (name, &(iter, value)) in writes {
                match final_writes.get(name) {
                    Some(&(best, _)) if best >= iter => {}
                    _ => {
                        final_writes.insert(name, (iter, value));
                    }
                }
            }
        }
        for (name, (_, value)) in final_writes {
            st.heap.scalars.insert(name.clone(), value);
        }
        st.heap.scalars.insert(f.var.to_string(), exit_value);

        env.stats.record(
            f.id,
            n as u64,
            start.elapsed().as_secs_f64(),
            ExecMode::Parallel { threads, dynamic },
        );
        Ok(true)
    }
}

fn body_declares_array(body: &[Stmt]) -> bool {
    let mut found = false;
    walk_body(body, &mut |s| {
        if let Stmt::Decl { dims, .. } = s {
            if !dims.is_empty() {
                found = true;
            }
        }
    });
    found
}

/// Skew heuristic for `Auto` scheduling: a nested loop whose bounds go
/// through an index array (`for (k = rowstr[j]; k < rowstr[j+1]; …)`) has
/// per-iteration work proportional to data, not code — the shape where
/// static chunking leaves threads idle.
fn body_is_skewed(body: &[Stmt]) -> bool {
    fn has_array_ref(e: &AExpr) -> bool {
        let mut found = false;
        e.for_each(&mut |x| {
            if matches!(x, AExpr::Index(_, _)) {
                found = true;
            }
        });
        found
    }
    let mut skewed = false;
    walk_body(body, &mut |s| {
        if let Stmt::For { init, bound, .. } = s {
            if has_array_ref(init) || has_array_ref(bound) {
                skewed = true;
            }
        }
    });
    skewed
}

fn walk_body(stmts: &[Stmt], f: &mut impl FnMut(&Stmt)) {
    for s in stmts {
        f(s);
        for block in s.child_blocks() {
            walk_body(block, f);
        }
    }
}

// ---------------------------------------------------------------------------
// Engines.
// ---------------------------------------------------------------------------

/// Executes the program serially (the reference engine).  `heap` is the
/// initial program state (see [`crate::inputs::synthesize_inputs`]).
pub fn run_serial(program: &Program, heap: Heap) -> Result<ExecOutcome, ExecError> {
    run_serial_with(program, heap, &ExecOptions::default())
}

/// [`run_serial`] with explicit options (only `while_cap` is used).
pub fn run_serial_with(
    program: &Program,
    mut heap: Heap,
    opts: &ExecOptions,
) -> Result<ExecOutcome, ExecError> {
    let mut stats = ExecStats::default();
    let start = Instant::now();
    {
        // Record under the same baseline flag as the parallel engine so
        // that per-loop timings of the two runs are like-for-like.
        let mut store = HeapStore::new(&mut heap, opts.baseline_inspector);
        let mut env = ExecEnv {
            stats: &mut stats,
            timing: true,
            while_cap: opts.while_cap,
        };
        exec_stmts(&mut store, &program.body, &mut NoDispatch, &mut env)?;
    }
    stats.total_seconds = start.elapsed().as_secs_f64();
    Ok(ExecOutcome { heap, stats })
}

/// Executes the program with the parallel engine: loops the `report` proved
/// parallel (outermost-parallel ones) are dispatched onto
/// `ss_runtime` worker threads; everything else runs serially, optionally
/// under the runtime-inspector baseline (see
/// [`ExecOptions::baseline_inspector`]).
pub fn run_parallel(
    program: &Program,
    report: &ParallelizationReport,
    mut heap: Heap,
    opts: &ExecOptions,
) -> Result<ExecOutcome, ExecError> {
    let dispatchable: HashSet<LoopId> = report.outermost_parallel_loops().into_iter().collect();
    let mut stats = ExecStats::default();
    let start = Instant::now();
    {
        let mut store = HeapStore::new(&mut heap, opts.baseline_inspector);
        let mut policy = ParallelDispatch {
            dispatchable: &dispatchable,
            opts,
        };
        let mut env = ExecEnv {
            stats: &mut stats,
            timing: true,
            while_cap: opts.while_cap,
        };
        exec_stmts(&mut store, &program.body, &mut policy, &mut env)?;
    }
    stats.total_seconds = start.elapsed().as_secs_f64();
    Ok(ExecOutcome { heap, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_ir::parse_program;
    use ss_parallelizer::parallelize;

    fn opts(threads: usize) -> ExecOptions {
        ExecOptions {
            threads,
            ..ExecOptions::default()
        }
    }

    #[test]
    fn serial_engine_runs_a_prefix_sum() {
        let p = parse_program(
            "t",
            r#"
            s[0] = 0;
            for (i = 1; i <= n; i++) {
                s[i] = s[i-1] + i;
            }
        "#,
        )
        .unwrap();
        let heap = Heap::new()
            .with_scalar("n", 10)
            .with_array("s", vec![0; 11]);
        let out = run_serial(&p, heap).unwrap();
        assert_eq!(out.heap.arrays["s"].data[10], 55);
        assert_eq!(out.heap.scalars["i"], 11);
        assert_eq!(out.stats.loops[&LoopId(0)].iterations, 10);
    }

    #[test]
    fn conditionals_compound_ops_and_short_circuit() {
        let p = parse_program(
            "t",
            r#"
            x = 0;
            for (i = 0; i < 10; i++) {
                if (i % 2 == 0 && i != 4) {
                    x += i;
                } else {
                    x -= 1;
                }
            }
            y = !x;
            z = -x;
        "#,
        )
        .unwrap();
        let out = run_serial(&p, Heap::new()).unwrap();
        // even, not 4: 0+2+6+8 = 16; five odd iterations and i==4 subtract 6.
        assert_eq!(out.heap.scalars["x"], 10);
        assert_eq!(out.heap.scalars["y"], 0);
        assert_eq!(out.heap.scalars["z"], -10);
    }

    #[test]
    fn errors_are_reported() {
        let p = parse_program("t", "x = a[5];").unwrap();
        let heap = Heap::new().with_array("a", vec![0; 3]);
        assert!(matches!(
            run_serial(&p, heap),
            Err(ExecError::OutOfBounds { .. })
        ));

        let p = parse_program("t", "x = a[0];").unwrap();
        assert!(matches!(
            run_serial(&p, Heap::new()),
            Err(ExecError::UndefinedArray(_))
        ));

        let p = parse_program("t", "x = 1 / y;").unwrap();
        assert!(matches!(
            run_serial(&p, Heap::new()),
            Err(ExecError::DivisionByZero)
        ));

        let p = parse_program("t", "while (1) { x = 0; }").unwrap();
        let o = ExecOptions {
            while_cap: 1000,
            ..ExecOptions::default()
        };
        assert!(matches!(
            run_serial_with(&p, Heap::new(), &o),
            Err(ExecError::NonTerminating { .. })
        ));
    }

    #[test]
    fn parallel_engine_matches_serial_on_figure2() {
        let src = r#"
            for (e = 0; e < nelt; e++) { mt_to_id[e] = nelt - 1 - e; }
            for (miel = 0; miel < nelt; miel++) {
                iel = mt_to_id[miel];
                id_to_mt[iel] = miel;
            }
        "#;
        let p = parse_program("fig2", src).unwrap();
        let report = parallelize(&p);
        assert!(report.loop_report(LoopId(1)).unwrap().parallel);
        let n = 5000;
        let heap = Heap::new()
            .with_scalar("nelt", n)
            .with_array("mt_to_id", vec![0; n as usize])
            .with_array("id_to_mt", vec![0; n as usize]);
        let serial = run_serial(&p, heap.clone()).unwrap();
        for threads in [2, 4] {
            let par = run_parallel(&p, &report, heap.clone(), &opts(threads)).unwrap();
            assert_eq!(par.heap, serial.heap, "threads={threads}");
            assert_eq!(
                par.stats.loops[&LoopId(1)].mode,
                ExecMode::Parallel {
                    threads,
                    dynamic: false
                }
            );
        }
    }

    #[test]
    fn histogram_loop_is_never_dispatched() {
        let p = parse_program("hist", "for (i = 0; i < n; i++) { h[idx[i]] = i; }").unwrap();
        let report = parallelize(&p);
        assert!(report.outermost_parallel_loops().is_empty());
        let heap = Heap::new()
            .with_scalar("n", 100)
            .with_array("idx", (0..100).map(|i| i % 7).collect())
            .with_array("h", vec![-1; 7]);
        let par = run_parallel(&p, &report, heap.clone(), &opts(4)).unwrap();
        assert!(par.stats.parallel_loops().is_empty());
        assert_eq!(par.stats.loops[&LoopId(0)].mode, ExecMode::Serial);
        assert_eq!(par.heap, run_serial(&p, heap).unwrap().heap);
    }

    #[test]
    fn inspector_baseline_judges_serial_loops() {
        // Histogram (conflicting): inspector must refuse it.
        let p = parse_program("hist", "for (i = 0; i < n; i++) { h[idx[i]] = i; }").unwrap();
        let report = parallelize(&p);
        let heap = Heap::new()
            .with_scalar("n", 100)
            .with_array("idx", (0..100).map(|i| i % 7).collect())
            .with_array("h", vec![-1; 7]);
        let o = ExecOptions {
            baseline_inspector: true,
            ..opts(4)
        };
        let out = run_parallel(&p, &report, heap, &o).unwrap();
        assert_eq!(
            out.stats.loops[&LoopId(0)].inspector_conflict_free,
            Some(false)
        );

        // Permutation scatter via an opaque input array: the compile-time
        // analysis cannot prove it, but this input is injective so the
        // runtime inspector licenses it.
        let p = parse_program("scatter", "for (i = 0; i < n; i++) { x[p[i]] = i; }").unwrap();
        let report = parallelize(&p);
        assert!(report.outermost_parallel_loops().is_empty());
        let n = 50i64;
        let heap = Heap::new()
            .with_scalar("n", n)
            .with_array("p", (0..n).rev().collect())
            .with_array("x", vec![0; n as usize]);
        let out = run_parallel(&p, &report, heap, &o).unwrap();
        assert_eq!(
            out.stats.loops[&LoopId(0)].inspector_conflict_free,
            Some(true)
        );
    }

    #[test]
    fn inspector_gives_no_verdict_for_loops_containing_dispatched_work() {
        // The outer serial loop rewrites the same x[] elements every
        // iteration, but the writes happen inside the dispatched inner
        // loop, invisible to the recording — the inspector must answer
        // "uninspected" (None), never "conflict-free".
        let src = r#"
            for (t = 0; t < reps; t++) {
                for (i = 0; i < n; i++) {
                    x[i] = t;
                }
            }
        "#;
        let p = parse_program("rewrite", src).unwrap();
        let report = parallelize(&p);
        assert!(report.outermost_parallel_loops().contains(&LoopId(1)));
        assert!(!report.loop_report(LoopId(0)).unwrap().parallel);
        let heap = Heap::new()
            .with_scalar("reps", 3)
            .with_scalar("n", 100)
            .with_array("x", vec![0; 100]);
        let o = ExecOptions {
            baseline_inspector: true,
            ..opts(4)
        };
        let out = run_parallel(&p, &report, heap.clone(), &o).unwrap();
        assert!(out.stats.parallel_loops().contains(&LoopId(1)));
        assert_eq!(
            out.stats.loops[&LoopId(0)].inspector_conflict_free,
            None,
            "a frame blind to worker accesses must not claim conflict-freedom"
        );
        assert_eq!(out.heap, run_serial(&p, heap).unwrap().heap);
    }

    #[test]
    fn skewed_bodies_choose_dynamic_scheduling_under_auto() {
        // Figure 9 shape: count → prefix-sum → per-row traversal, where the
        // monotonicity of rowptr is derived from the filling code.
        let src = r#"
            for (i = 0; i < n; i++) {
                cnt = 0;
                for (t = 0; t < 5; t++) {
                    if (w[i][t] != 0) { cnt++; }
                }
                rowsize[i] = cnt;
            }
            rowptr[0] = 0;
            for (i = 1; i <= n; i++) { rowptr[i] = rowptr[i-1] + rowsize[i-1]; }
            for (i = 0; i < n; i++) {
                for (j = rowptr[i]; j < rowptr[i+1]; j++) {
                    out[j] = v[j] * 2;
                }
            }
        "#;
        let p = parse_program("csr", src).unwrap();
        let report = parallelize(&p);
        // Loop 3 is the outer traversal; the properties enable it.
        assert!(report.outermost_parallel_loops().contains(&LoopId(3)));
        let heap = crate::inputs::synthesize_inputs(
            &p,
            &crate::inputs::InputSpec {
                scale: 200,
                seed: 5,
            },
        )
        .unwrap();
        let serial = run_serial(&p, heap.clone()).unwrap();
        let par = run_parallel(&p, &report, heap, &opts(4)).unwrap();
        assert_eq!(par.heap, serial.heap);
        // Auto picks dynamic scheduling because the dispatched loop's inner
        // bounds go through the rowptr index array.
        assert_eq!(
            par.stats.loops[&LoopId(3)].mode,
            ExecMode::Parallel {
                threads: 4,
                dynamic: true
            }
        );
    }

    #[test]
    fn scalar_merge_back_reproduces_serial_last_iteration_values() {
        // `last` is written under a condition met only by some iterations;
        // the merged value must come from the globally last writing
        // iteration, wherever its chunk ran.
        let src = r#"
            for (i = 0; i < n; i++) {
                t = i * 2;
                out[i] = t;
                if (i % 10 == 3) {
                    last = i;
                }
            }
        "#;
        let p = parse_program("t", src).unwrap();
        let report = parallelize(&p);
        assert!(!report.outermost_parallel_loops().is_empty());
        let n = 1000;
        let heap = Heap::new()
            .with_scalar("n", n)
            .with_array("out", vec![0; n as usize]);
        let serial = run_serial(&p, heap.clone()).unwrap();
        assert_eq!(serial.heap.scalars["last"], 993);
        for threads in [2, 3, 8] {
            let par = run_parallel(&p, &report, heap.clone(), &opts(threads)).unwrap();
            assert_eq!(par.heap, serial.heap, "threads={threads}");
        }
    }

    #[test]
    fn worker_errors_propagate() {
        let p = parse_program("t", "for (i = 0; i < n; i++) { out[i] = i; }").unwrap();
        let report = parallelize(&p);
        assert!(!report.outermost_parallel_loops().is_empty());
        let heap = Heap::new()
            .with_scalar("n", 100)
            .with_array("out", vec![0; 50]); // too small on purpose
        let err = run_parallel(&p, &report, heap, &opts(4)).unwrap_err();
        assert!(matches!(err, ExecError::OutOfBounds { .. }));
    }
}
