//! # ss-bench — shared harness code for the figure-regenerating benchmarks
//!
//! Criterion benches (one per table/figure of the paper) and the runnable
//! examples share the helpers in this crate: converting the kernel catalogue
//! into study inputs, and the Figure 10 speedup sweep.

use ss_npb::{run_cg_with, scaled_params, CgParams, Class};
use ss_parallelizer::{run_study, StudyInput, StudyTable};

/// Converts the `ss-npb` kernel catalogue into study inputs for the
/// parallelizer's Figure-1 study.
pub fn catalogue_inputs() -> Vec<StudyInput> {
    ss_npb::study_kernels()
        .into_iter()
        .map(|k| StudyInput {
            name: k.name.to_string(),
            program: k.program.to_string(),
            suite: format!("{:?}", k.suite),
            pattern: k.class.label().to_string(),
            source: k.source.to_string(),
            target_loop: k.target_loop,
        })
        .collect()
}

/// Runs the Figure-1 study over the whole catalogue.
pub fn run_catalogue_study() -> StudyTable {
    run_study(&catalogue_inputs())
}

/// One measured point of the Figure 10 sweep.
#[derive(Debug, Clone)]
pub struct SpeedupPoint {
    /// NPB class.
    pub class: Class,
    /// Threads used for the subscripted-subscript loops.
    pub threads: usize,
    /// Wall-clock seconds of the timed section.
    pub seconds: f64,
    /// Speedup relative to the serial run of the same class.
    pub speedup: f64,
}

/// Runs the Figure 10 sweep: serial plus the given thread counts, for each
/// class, using problem sizes scaled by `fraction` (1.0 = official class
/// sizes).
pub fn figure10_sweep(classes: &[Class], threads: &[usize], fraction: f64) -> Vec<SpeedupPoint> {
    let mut out = Vec::new();
    for &class in classes {
        let params: CgParams = scaled_params(class, fraction);
        let serial = run_cg_with(&params, 1, 42);
        out.push(SpeedupPoint {
            class,
            threads: 1,
            seconds: serial.seconds,
            speedup: 1.0,
        });
        for &t in threads {
            if t <= 1 {
                continue;
            }
            let r = run_cg_with(&params, t, 42);
            out.push(SpeedupPoint {
                class,
                threads: t,
                seconds: r.seconds,
                speedup: serial.seconds / r.seconds.max(1e-12),
            });
        }
    }
    out
}

/// Renders the sweep as the Figure 10 table (classes × thread counts).
pub fn render_figure10(points: &[SpeedupPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:>8} {:>12} {:>10}\n",
        "class", "threads", "seconds", "speedup"
    ));
    for p in points {
        out.push_str(&format!(
            "{:<8} {:>8} {:>12.4} {:>10.2}\n",
            p.class.name(),
            p.threads,
            p.seconds,
            p.speedup
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_converts_completely() {
        let inputs = catalogue_inputs();
        assert_eq!(inputs.len(), ss_npb::study_kernels().len());
        assert!(inputs.iter().all(|i| !i.source.is_empty()));
    }

    #[test]
    fn study_detects_every_catalogued_kernel() {
        let table = run_catalogue_study();
        // Every kernel is either proven parallel at compile time or marked
        // wavefront-schedulable for the runtime level-set tier.
        assert_eq!(
            table.detected_count() + table.wavefront_count(),
            table.rows.len()
        );
        assert!(table.wavefront_count() >= 2);
        // and the baseline detects none of them (they all hinge on
        // subscripted-subscript reasoning)
        assert_eq!(table.baseline_count(), 0);
    }

    #[test]
    fn tiny_figure10_sweep_produces_sane_numbers() {
        let points = figure10_sweep(&[Class::S], &[2], 0.2);
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|p| p.seconds > 0.0));
        assert!(points.iter().all(|p| p.speedup > 0.0));
        let txt = render_figure10(&points);
        assert!(txt.contains("class"));
        assert!(txt.contains('S'));
    }
}
