//! Ablation: what the analysis verdict is worth at execution time.
//!
//! Section 5 of the paper observes that "current parallelizers do not detect
//! these loops as parallel, executing bulk of the program sequentially".
//! The baseline Range Test (no index-array properties) reaches exactly that
//! verdict on every catalogued kernel, so the execution-time consequence of
//! the extended analysis is the gap between the serial run (baseline
//! verdict) and the parallel run (extended verdict) of each kernel.
//!
//! One Criterion group per kernel, with a `baseline_serial` and an
//! `extended_parallel` entry; the ratio between the two is the per-kernel
//! ablation of the paper's contribution.

use criterion::{criterion_group, criterion_main, Criterion};
use ss_npb::kernels::{fig2, fig6, fig7, ipvec, is_rank};
use ss_runtime::hardware_threads;

fn threads() -> usize {
    hardware_threads().clamp(2, 8)
}

fn bench_fig2(c: &mut Criterion) {
    let mt_to_id = fig2::generate(500_000, 1);
    let mut group = c.benchmark_group("ablation_fig2_ua_transfer");
    group.sample_size(20);
    group.bench_function("baseline_serial", |b| b.iter(|| fig2::serial(&mt_to_id)));
    group.bench_function("extended_parallel", |b| {
        b.iter(|| fig2::parallel(&mt_to_id, threads()))
    });
    group.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let (r, p) = fig6::generate(20_000, 24, 5);
    let mut group = c.benchmark_group("ablation_fig6_csparse_blocks");
    group.sample_size(20);
    group.bench_function("baseline_serial", |b| b.iter(|| fig6::serial(&r, &p)));
    group.bench_function("extended_parallel", |b| {
        b.iter(|| fig6::parallel(&r, &p, threads()))
    });
    group.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let front = fig7::generate(120_000);
    let mut group = c.benchmark_group("ablation_fig7_ua_refine");
    group.sample_size(20);
    group.bench_function("baseline_serial", |b| b.iter(|| fig7::serial(&front)));
    group.bench_function("extended_parallel", |b| {
        b.iter(|| fig7::parallel(&front, threads()))
    });
    group.finish();
}

fn bench_is_rank(c: &mut Criterion) {
    let buckets = is_rank::generate(800_000, 512, 256, 17);
    let mut group = c.benchmark_group("ablation_is_bucket_traversal");
    group.sample_size(20);
    group.bench_function("baseline_serial", |b| {
        b.iter(|| is_rank::serial(&buckets, 256))
    });
    group.bench_function("extended_parallel", |b| {
        b.iter(|| is_rank::parallel(&buckets, 256, threads()))
    });
    group.finish();
}

fn bench_ipvec(c: &mut Criterion) {
    let (p, v) = ipvec::generate(600_000, 23);
    let mut group = c.benchmark_group("ablation_csparse_ipvec");
    group.sample_size(20);
    group.bench_function("baseline_serial", |b| b.iter(|| ipvec::serial(&p, &v)));
    group.bench_function("extended_parallel", |b| {
        b.iter(|| ipvec::parallel(&p, &v, threads()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig2,
    bench_fig6,
    bench_fig7,
    bench_is_rank,
    bench_ipvec
);
criterion_main!(benches);
