//! Compile-time cost breakdown of the analysis passes (aggregation alone vs
//! the full pipeline).  Not a figure of the paper, but the ablation DESIGN.md
//! calls out: how much of the analysis cost is property derivation vs
//! dependence testing.

use criterion::{criterion_group, criterion_main, Criterion};
use ss_aggregation::analyze_program;
use ss_bench::catalogue_inputs;
use ss_ir::parse_program;
use ss_parallelizer::parallelize;

fn bench_passes(c: &mut Criterion) {
    let programs: Vec<_> = catalogue_inputs()
        .into_iter()
        .map(|i| parse_program(&i.name, &i.source).unwrap())
        .collect();
    let mut group = c.benchmark_group("analysis_cost");
    group.bench_function("parse_only", |b| {
        let inputs = catalogue_inputs();
        b.iter(|| {
            for i in &inputs {
                parse_program(&i.name, &i.source).unwrap();
            }
        })
    });
    group.bench_function("aggregation_only", |b| {
        b.iter(|| {
            for p in &programs {
                analyze_program(p);
            }
        })
    });
    group.bench_function("full_pipeline", |b| {
        b.iter(|| {
            for p in &programs {
                parallelize(p);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_passes);
criterion_main!(benches);
