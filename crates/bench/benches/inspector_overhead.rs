//! Ablation: compile-time parallelization vs. run-time schemes.
//!
//! The paper's related-work section argues that inspector/executor schemes
//! and speculative tests (LRPD) can parallelize the same loops but pay a
//! per-invocation run-time cost that the compile-time analysis avoids.  This
//! bench measures that cost head-to-head on the two loop shapes of the
//! evaluation:
//!
//! * the Figure 9 / CG shape — an outer loop over rows whose body touches
//!   `data[rowptr[i] .. rowptr[i+1]]` (enabling property: monotonicity);
//! * the Figure 2 / cs_ipvec shape — `x[p[k]] = b[k]` (enabling property:
//!   injectivity).
//!
//! Modes compared per shape: `serial` (what conventional compilers emit),
//! `compile_time` (this paper: parallel, zero run-time analysis),
//! `inspector_executor` (inspect the index array on every invocation, then
//! run parallel), and for the scatter shape additionally `lrpd`
//! (speculative parallel execution with shadow-array validation).

use criterion::{criterion_group, criterion_main, Criterion};
use ss_inspector::executor::{run_indirect_scatter, run_range_partitioned, Mode};
use ss_inspector::lrpd::lrpd_scatter;
use ss_npb::kernels::fig9;
use ss_runtime::{hardware_threads, CsrMatrix};

fn bench_range_partitioned(c: &mut Criterion) {
    let dense = fig9::generate_dense(1200, 1600, 0.05, 7);
    let a = CsrMatrix::from_dense(&dense);
    let vector: Vec<f64> = (0..a.ncols).map(|i| 1.0 + (i % 17) as f64).collect();
    let bounds: Vec<i64> = std::iter::once(0)
        .chain(a.rowptr.iter().map(|&r| r as i64))
        .collect();
    let nnz = a.nnz();
    let values = a.values.clone();
    let vlen = vector.len();
    let row_body = move |_i: usize, j: usize| values[j] * vector[j % vlen];
    let threads = hardware_threads().min(8);

    let mut group = c.benchmark_group("inspector_overhead_fig9");
    group.sample_size(20);
    for (label, mode) in [
        ("serial", Mode::Serial),
        ("compile_time", Mode::CompileTime),
        ("inspector_executor", Mode::InspectorExecutor),
    ] {
        group.bench_function(label, |bench| {
            bench.iter(|| {
                let mut data = vec![0.0f64; nnz];
                run_range_partitioned(&mut data, &bounds, &row_body, threads, mode)
            })
        });
    }
    group.finish();
}

fn bench_indirect_scatter(c: &mut Criterion) {
    let n = 400_000usize;
    let (p, b) = ss_npb::kernels::ipvec::generate(n, 3);
    let index: Vec<i64> = p.iter().map(|&x| x as i64).collect();
    let values: Vec<i64> = b.iter().map(|&v| (v * 1e6) as i64).collect();
    let threads = hardware_threads().min(8);

    let mut group = c.benchmark_group("inspector_overhead_scatter");
    group.sample_size(20);
    for (label, mode) in [
        ("serial", Mode::Serial),
        ("compile_time", Mode::CompileTime),
        ("inspector_executor", Mode::InspectorExecutor),
    ] {
        group.bench_function(label, |bench| {
            bench.iter(|| {
                let mut target = vec![0i64; n];
                run_indirect_scatter(&mut target, &index, |i| values[i], |_| true, threads, mode)
            })
        });
    }
    group.bench_function("lrpd_speculative", |bench| {
        bench.iter(|| {
            let mut target = vec![0i64; n];
            lrpd_scatter(&mut target, &index, |i| values[i], |_| true, threads)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_range_partitioned, bench_indirect_scatter);
criterion_main!(benches);
