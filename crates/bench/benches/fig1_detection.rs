//! Figure 1 reproduction: the pattern study over the NPB / SuiteSparse
//! kernel catalogue, plus the compile-time cost of detecting each pattern.
//!
//! Run with `cargo bench -p ss-bench --bench fig1_detection`.  The study
//! table itself is printed once at startup; criterion then measures the
//! analysis cost per kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use ss_bench::{catalogue_inputs, run_catalogue_study};
use ss_parallelizer::parallelize_source;

fn bench_detection(c: &mut Criterion) {
    // Print the study table (the Figure 1 reproduction) once.
    println!("\n===== Figure 1: subscripted-subscript pattern study =====");
    println!("{}", run_catalogue_study().render());

    let mut group = c.benchmark_group("fig1_detection");
    for input in catalogue_inputs() {
        group.bench_function(&input.name, |b| {
            b.iter(|| {
                let report = parallelize_source(&input.name, &input.source).unwrap();
                assert!(report
                    .loop_report(ss_ir::LoopId(input.target_loop))
                    .unwrap()
                    .is_parallelizable());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detection);
criterion_main!(benches);
