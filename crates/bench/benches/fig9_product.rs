//! Figure 9 kernel: CSR construction + the sparse product loop, serial vs
//! parallel (the parallelization our analysis licenses).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ss_npb::kernels::fig9;
use ss_runtime::{hardware_threads, CsrMatrix};

fn bench_fig9(c: &mut Criterion) {
    let dense = fig9::generate_dense(1500, 2000, 0.05, 7);
    let a = CsrMatrix::from_dense(&dense);
    let vector: Vec<f64> = (0..a.ncols).map(|i| 1.0 + (i % 17) as f64).collect();
    let mut group = c.benchmark_group("fig9_product");
    group.sample_size(20);
    group.bench_function("serial", |b| b.iter(|| fig9::product_serial(&a, &vector)));
    for threads in [2usize, 4, 8] {
        if threads > hardware_threads() * 2 {
            continue;
        }
        group.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &t| {
            b.iter(|| fig9::product_parallel(&a, &vector, t))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
