//! Interpreter execution cost: the Figure 9 product kernel executed by
//! every registered serial engine (the bytecode engine at both
//! `--opt-level`s), by the parallel engines, and — for the
//! runtime-machinery comparison the paper argues against — by the native
//! inspector/executor driver on the same CSR data.
//!
//! The serial engines form the interpretation-cost ladder: identical
//! program, identical inputs, identical single thread — the only
//! difference is name-keyed tree walking vs slot-addressed tree walking vs
//! a flat instruction stream vs the *optimized* flat stream.  The
//! O1-vs-O0 pair is the superinstruction/peephole win the optimizer
//! exists for; bytecode-vs-compiled is the expression-flattening win
//! below it.  The session compiles **once**, outside the timed loops (the
//! engine handles come from its registry), so every number is pure
//! execution cost.
//!
//! Run with `cargo bench -p ss-bench --bench interp_exec`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ss_inspector::executor::{run_range_partitioned, Mode};
use ss_interp::{engine_label, synthesize_inputs, ExecOptions, InputSpec, Session};
use ss_npb::kernels::fig9;
use ss_runtime::{hardware_threads, CsrMatrix};

fn bench_interp(c: &mut Criterion) {
    let kernel = ss_npb::study_kernels()
        .into_iter()
        .find(|k| k.name == "fig9_csr_product")
        .expect("catalogue kernel");
    let session = Session::new();
    // Compile once, up front; the timed loops below only execute.
    let artifacts = session.artifacts(kernel.name, kernel.source).unwrap();
    let spec = InputSpec {
        scale: 200,
        seed: 7,
    };
    let initial = synthesize_inputs(&artifacts.program, &spec).unwrap();

    let mut group = c.benchmark_group("interp_exec_fig9");
    group.sample_size(10);
    // Every registered engine, at every opt level it distinguishes —
    // adding an engine to the registry adds its ladder rung here.
    for engine in session.registry().iter() {
        for &opt_level in engine.caps().opt_levels {
            let label = format!("serial_engine_{}", engine_label(engine.as_ref(), opt_level))
                .replace('@', "_")
                .to_lowercase();
            let opts = ExecOptions {
                threads: 1,
                opt_level,
                ..ExecOptions::default()
            };
            let engine = engine.clone();
            group.bench_function(&label, |b| {
                b.iter(|| {
                    engine
                        .run_serial(&artifacts, initial.clone(), &opts)
                        .unwrap()
                })
            });
        }
    }
    for engine in session.registry().iter() {
        let caps = engine.caps();
        if !(caps.reductions && caps.local_arrays) {
            continue; // only the dispatching engines are worth the sweep
        }
        let label = format!("parallel_engine_{}", engine.name());
        for threads in [2usize, 4] {
            if threads > hardware_threads() * 2 {
                continue;
            }
            let opts = ExecOptions {
                threads,
                ..ExecOptions::default()
            };
            let engine = engine.clone();
            group.bench_with_input(BenchmarkId::new(&label, threads), &opts, |b, opts| {
                b.iter(|| {
                    engine
                        .run_parallel(&artifacts, initial.clone(), opts)
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

/// The same loop shape natively: what the interpreter's dispatch is paying
/// for, and what runtime inspection costs per invocation.
fn bench_native_baseline(c: &mut Criterion) {
    let dense = fig9::generate_dense(400, 500, 0.06, 7);
    let a = CsrMatrix::from_dense(&dense);
    let vector: Vec<f64> = (0..a.ncols).map(|i| 1.0 + (i % 17) as f64).collect();
    let bounds: Vec<i64> = std::iter::once(0)
        .chain(a.rowptr.iter().map(|&r| r as i64))
        .collect();
    let values = a.values.clone();
    let vlen = vector.len();
    let row_body = move |_i: usize, j: usize| values[j] * vector[j % vlen];
    let threads = hardware_threads().min(4);

    let mut group = c.benchmark_group("interp_exec_native_fig9");
    group.sample_size(10);
    for (label, mode) in [
        ("compile_time_parallel", Mode::CompileTime),
        ("inspector_executor", Mode::InspectorExecutor),
        ("serial", Mode::Serial),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut data = vec![0.0f64; a.nnz()];
                run_range_partitioned(&mut data, &bounds, &row_body, threads, mode)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_interp, bench_native_baseline);
criterion_main!(benches);
