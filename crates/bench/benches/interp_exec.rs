//! Interpreter execution cost: the Figure 9 product kernel executed by the
//! bytecode (register-machine) serial engine, by the compiled
//! (slot-resolved) serial engine, by the tree-walking serial engine they
//! replaced, by the parallel engine (compile-time verdicts, zero runtime
//! analysis), and — for the runtime-machinery comparison the paper argues
//! against — by the native inspector/executor driver on the same CSR data.
//!
//! The three serial engines form the interpretation-cost ladder: identical
//! program, identical inputs, identical single thread — the only
//! difference is name-keyed tree walking vs slot-addressed tree walking vs
//! a flat instruction stream.  The bytecode-vs-compiled pair is the
//! expression-flattening win this layer exists for.
//!
//! Run with `cargo bench -p ss-bench --bench interp_exec`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ss_inspector::executor::{run_range_partitioned, Mode};
use ss_interp::{
    run_parallel, run_serial_with, synthesize_inputs, EngineChoice, ExecOptions, InputSpec,
};
use ss_npb::kernels::fig9;
use ss_runtime::{hardware_threads, CsrMatrix};

fn bench_interp(c: &mut Criterion) {
    let kernel = ss_npb::study_kernels()
        .into_iter()
        .find(|k| k.name == "fig9_csr_product")
        .expect("catalogue kernel");
    let program = ss_ir::parse_program(kernel.name, kernel.source).unwrap();
    let report = ss_parallelizer::parallelize(&program);
    let spec = InputSpec {
        scale: 200,
        seed: 7,
    };
    let initial = synthesize_inputs(&program, &spec).unwrap();

    let mut group = c.benchmark_group("interp_exec_fig9");
    group.sample_size(10);
    for (label, engine) in [
        ("serial_engine_bytecode", EngineChoice::Bytecode),
        ("serial_engine_compiled", EngineChoice::Compiled),
        ("serial_engine_ast", EngineChoice::Ast),
    ] {
        let opts = ExecOptions {
            threads: 1,
            engine,
            ..ExecOptions::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| run_serial_with(&program, initial.clone(), &opts).unwrap())
        });
    }
    for (label, engine) in [
        ("parallel_engine_bytecode", EngineChoice::Bytecode),
        ("parallel_engine_compiled", EngineChoice::Compiled),
    ] {
        for threads in [2usize, 4] {
            if threads > hardware_threads() * 2 {
                continue;
            }
            let opts = ExecOptions {
                threads,
                engine,
                ..ExecOptions::default()
            };
            group.bench_with_input(BenchmarkId::new(label, threads), &opts, |b, opts| {
                b.iter(|| run_parallel(&program, &report, initial.clone(), opts).unwrap())
            });
        }
    }
    group.finish();
}

/// The same loop shape natively: what the interpreter's dispatch is paying
/// for, and what runtime inspection costs per invocation.
fn bench_native_baseline(c: &mut Criterion) {
    let dense = fig9::generate_dense(400, 500, 0.06, 7);
    let a = CsrMatrix::from_dense(&dense);
    let vector: Vec<f64> = (0..a.ncols).map(|i| 1.0 + (i % 17) as f64).collect();
    let bounds: Vec<i64> = std::iter::once(0)
        .chain(a.rowptr.iter().map(|&r| r as i64))
        .collect();
    let values = a.values.clone();
    let vlen = vector.len();
    let row_body = move |_i: usize, j: usize| values[j] * vector[j % vlen];
    let threads = hardware_threads().min(4);

    let mut group = c.benchmark_group("interp_exec_native_fig9");
    group.sample_size(10);
    for (label, mode) in [
        ("compile_time_parallel", Mode::CompileTime),
        ("inspector_executor", Mode::InspectorExecutor),
        ("serial", Mode::Serial),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut data = vec![0.0f64; a.nnz()];
                run_range_partitioned(&mut data, &bounds, &row_body, threads, mode)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_interp, bench_native_baseline);
criterion_main!(benches);
