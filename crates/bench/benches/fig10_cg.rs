//! Figure 10 reproduction: CG speedups after parallelizing only the
//! subscripted-subscript loops, swept over thread counts and classes.
//!
//! The official Class A/B/C sizes take minutes per point; the bench uses
//! scaled-down instances (same sparsity parameters, smaller order) so that
//! the whole sweep completes quickly.  The full-size sweep is available via
//! `cargo run --release --example cg_speedup -- --full`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ss_bench::{figure10_sweep, render_figure10};
use ss_npb::{run_cg_with, scaled_params, Class};

fn bench_cg(c: &mut Criterion) {
    // Print a quick Figure 10 style table once (scaled instances).
    let points = figure10_sweep(&[Class::S, Class::A], &[2, 4, 8], 0.08);
    println!("\n===== Figure 10 (scaled instances): CG speedups =====");
    println!("{}", render_figure10(&points));

    let mut group = c.benchmark_group("fig10_cg");
    group.sample_size(10);
    for class in [Class::S, Class::A] {
        let params = scaled_params(class, 0.08);
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("class_{}", class.name()), threads),
                &threads,
                |b, &t| b.iter(|| run_cg_with(&params, t, 42)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cg);
criterion_main!(benches);
