//! `sspar-load` — closed-loop load generator for `sspard`.
//!
//! Replays the study-kernel catalogue × every registered engine × its
//! opt levels at a configurable concurrency and prints a throughput /
//! latency table.  With `--spawn` it hosts an in-process daemon for the
//! duration of the run — a self-contained smoke/benchmark mode for CI.

use ss_daemon::load::{self, LoadConfig};
use ss_daemon::server::{self, DaemonConfig};

const USAGE: &str = "\
sspar-load — load generator for sspard (catalogue × engines × opt levels)

USAGE:
    sspar-load [OPTIONS]

OPTIONS:
    --addr <host:port>   daemon to drive [default: 127.0.0.1:7878]
    --spawn              start an in-process daemon instead (ignores --addr)
    --concurrency <n>    concurrent client connections [default: 4]
    --iters <n>          repetitions of the full matrix [default: 3]
    --scale <n>          input-synthesis scale per run [default: 64]
    --threads <n>        worker threads requested per run [default: 2]
    --engine <name>      restrict to one engine (repeatable) [default: all]
    --tuned              add a policy:\"tuned\" leg per kernel (auto-tuned
                         policies, searched once then reapplied from cache)
    -h, --help           print this help";

struct Args {
    load: LoadConfig,
    spawn: bool,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        load: LoadConfig::default(),
        spawn: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => parsed.load.addr = value("--addr")?,
            "--spawn" => parsed.spawn = true,
            "--concurrency" => {
                parsed.load.concurrency = parse_num(&value("--concurrency")?, "--concurrency")?
            }
            "--iters" => parsed.load.iters = parse_num(&value("--iters")?, "--iters")?,
            "--scale" => parsed.load.scale = parse_num(&value("--scale")?, "--scale")? as i64,
            "--threads" => parsed.load.threads = parse_num(&value("--threads")?, "--threads")?,
            "--engine" => parsed.load.engines.push(value("--engine")?),
            "--tuned" => parsed.load.tuned = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(parsed)
}

fn parse_num(text: &str, flag: &str) -> Result<usize, String> {
    text.parse::<usize>()
        .map_err(|_| format!("{flag} needs a non-negative integer, got '{text}'"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut args = match parse_args(&args) {
        Ok(args) => args,
        Err(message) => {
            if message.is_empty() {
                println!("{USAGE}");
                std::process::exit(0);
            }
            eprintln!("error: {message}\n\n{USAGE}");
            std::process::exit(2);
        }
    };

    let spawned = if args.spawn {
        match server::start(DaemonConfig::default()) {
            Ok(daemon) => {
                args.load.addr = daemon.local_addr().to_string();
                Some(daemon)
            }
            Err(e) => {
                eprintln!("error: cannot spawn daemon: {e}");
                std::process::exit(3);
            }
        }
    } else {
        None
    };

    let outcome = load::run_load(&args.load);
    if let Some(mut daemon) = spawned {
        let _ = server::request(&args.load.addr, r#"{"op":"shutdown"}"#);
        daemon.join();
    }
    match outcome {
        Ok(report) => {
            println!("{report}");
            std::process::exit(if report.total_errors == 0 { 0 } else { 1 });
        }
        Err(e) => {
            eprintln!("error: load run failed: {e}");
            std::process::exit(3);
        }
    }
}
