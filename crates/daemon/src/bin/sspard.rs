//! `sspard` — the subscripted-subscript analysis/execution daemon.
//!
//! Serves the newline-delimited JSON protocol of `ss_daemon::protocol`
//! over TCP until a `shutdown` request drains it.  Run `sspard --help`
//! for the knobs.

use ss_daemon::server::{self, DaemonConfig};
use std::time::Duration;

const USAGE: &str = "\
sspard — long-running analysis/execution daemon (NDJSON over TCP)

USAGE:
    sspard [OPTIONS]

OPTIONS:
    --addr <host:port>          listen address [default: 127.0.0.1:7878; :0 picks a port]
    --workers <n>               worker threads executing requests [default: 4]
    --shards <n>                persistent thread-team shards [default: 2]
    --queue <n>                 bounded request-queue depth [default: 64]
    --max-line-bytes <n>        request-line byte cap [default: 1048576]
    --idle-timeout-ms <n>       idle-connection timeout [default: 30000]
    --cache-capacity <n>        per-tenant artifact-cache entry bound [default: unbounded]
    --cache-capacity-bytes <n>  per-tenant artifact-cache byte bound [default: unbounded]
    -h, --help                  print this help

The daemon prints `listening on <addr>` once ready and exits 0 after a
graceful drain (the `shutdown` op).";

fn parse_args(args: &[String]) -> Result<DaemonConfig, String> {
    let mut config = DaemonConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..DaemonConfig::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--workers" => config.workers = parse_num(&value("--workers")?, "--workers")?,
            "--shards" => config.shards = parse_num(&value("--shards")?, "--shards")?,
            "--queue" => config.queue = parse_num(&value("--queue")?, "--queue")?,
            "--max-line-bytes" => {
                config.max_line_bytes = parse_num(&value("--max-line-bytes")?, "--max-line-bytes")?
            }
            "--idle-timeout-ms" => {
                config.idle_timeout = Duration::from_millis(parse_num(
                    &value("--idle-timeout-ms")?,
                    "--idle-timeout-ms",
                )? as u64)
            }
            "--cache-capacity" => {
                config.cache_capacity =
                    Some(parse_num(&value("--cache-capacity")?, "--cache-capacity")?)
            }
            "--cache-capacity-bytes" => {
                config.cache_capacity_bytes = Some(parse_num(
                    &value("--cache-capacity-bytes")?,
                    "--cache-capacity-bytes",
                )?)
            }
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(config)
}

fn parse_num(text: &str, flag: &str) -> Result<usize, String> {
    text.parse::<usize>()
        .map_err(|_| format!("{flag} needs a non-negative integer, got '{text}'"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(message) => {
            if message.is_empty() {
                println!("{USAGE}");
                std::process::exit(0);
            }
            eprintln!("error: {message}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let mut daemon = match server::start(config) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("error: cannot start daemon: {e}");
            std::process::exit(3);
        }
    };
    println!("listening on {}", daemon.local_addr());
    daemon.join();
    println!("drained; exiting");
}
