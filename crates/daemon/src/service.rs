//! The daemon's request brain: multi-tenant [`Session`]s, shard-affine
//! thread teams, and the dispatch of parsed protocol requests to the
//! embeddable API.
//!
//! Tenancy: every request names a `tenant`; each tenant gets its own
//! [`Session`] (created on first use), so artifact caches — and their
//! hit/miss/eviction counters — are isolated per tenant while the
//! process-wide thread teams are shared through the shard map.
//!
//! Sharding: a request is hashed (tenant, program name) onto one of
//! `shards` persistent `ss_runtime` thread teams, keyed by team *group*
//! (see `ss_runtime::with_shared_team_in`).  Group 0 is left alone — it
//! belongs to in-process/CLI callers — so daemon shards use groups
//! `1..=shards`.  Same program, same tenant → same team: warm threads,
//! no team churn under concurrency.

use crate::protocol::{Op, Request, WireError};
use crate::stats::StatsRegistry;
use ss_interp::{analysis_json, json, registry_json, RunRequest, Session, TunerConfig};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// The configuration the service half of the daemon needs (the transport
/// half's knobs live in `server::DaemonConfig`).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of persistent thread-team shards (≥ 1).
    pub shards: usize,
    /// Per-tenant artifact-cache entry bound (`None` = unbounded).
    pub cache_capacity: Option<usize>,
    /// Per-tenant artifact-cache byte bound (`None` = unbounded).
    pub cache_capacity_bytes: Option<usize>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            shards: 2,
            cache_capacity: None,
            cache_capacity_bytes: None,
        }
    }
}

/// Multi-tenant request dispatcher over [`Session`]s.
pub struct Service {
    config: ServiceConfig,
    tenants: Mutex<BTreeMap<String, Arc<Session>>>,
    catalogue: BTreeMap<&'static str, &'static str>,
    /// Transport + endpoint metrics (the server records into this too).
    pub stats: StatsRegistry,
}

impl Service {
    /// A service with the given shard/cache configuration and the full
    /// study-kernel catalogue.
    pub fn new(config: ServiceConfig) -> Service {
        let catalogue = ss_npb::study_kernels()
            .into_iter()
            .map(|k| (k.name, k.source))
            .collect();
        Service {
            config: ServiceConfig {
                shards: config.shards.max(1),
                ..config
            },
            tenants: Mutex::new(BTreeMap::new()),
            catalogue,
            stats: StatsRegistry::new(),
        }
    }

    /// The tenant's session, created on first use (with the configured
    /// cache bounds).
    pub fn session(&self, tenant: &str) -> Arc<Session> {
        let mut tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(tenants.entry(tenant.to_string()).or_insert_with(|| {
            let mut session = Session::new();
            if let Some(cap) = self.config.cache_capacity {
                session = session.with_cache_capacity(cap);
            }
            if let Some(bytes) = self.config.cache_capacity_bytes {
                session = session.with_cache_capacity_bytes(bytes);
            }
            Arc::new(session)
        }))
    }

    /// The catalogue names the daemon can resolve via `"kernel"`.
    pub fn kernel_names(&self) -> Vec<&'static str> {
        self.catalogue.keys().copied().collect()
    }

    /// The shard — and thereby the persistent thread-team group — a
    /// (tenant, program) pair is pinned to.  FNV-1a over both strings,
    /// reduced mod `shards`; stable across requests so repeated work
    /// lands on warm threads.
    pub fn shard(&self, tenant: &str, program: &str) -> usize {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for byte in tenant.bytes().chain([0u8]).chain(program.bytes()) {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        (hash % self.config.shards as u64) as usize
    }

    fn resolve_program(&self, req: &Request) -> Result<(String, String), WireError> {
        match (&req.kernel, &req.source) {
            (Some(kernel), None) => match self.catalogue.get(kernel.as_str()) {
                Some(source) => Ok((kernel.clone(), source.to_string())),
                None => Err(WireError::from(&ss_interp::SsError::UnknownKernel(
                    kernel.clone(),
                ))),
            },
            (None, Some(source)) => Ok((
                req.name.clone().unwrap_or_else(|| "inline".to_string()),
                source.clone(),
            )),
            // parse_request already rejected the other combinations.
            _ => Err(WireError::malformed("no program in request")),
        }
    }

    /// Serves one parsed request, returning the `result` JSON for the
    /// response envelope.  `shutdown` returns an acknowledgement here —
    /// actually draining the process is the server's job.
    pub fn dispatch(&self, req: &Request) -> Result<String, WireError> {
        match req.op {
            Op::Engines => Ok(registry_json(self.session(&req.tenant).registry())),
            Op::Stats => Ok(self.stats_json()),
            Op::Shutdown => Ok(json::object([("draining", "true".to_string())])),
            Op::Analyze => {
                let (name, source) = self.resolve_program(req)?;
                let session = self.session(&req.tenant);
                let artifacts = session
                    .artifacts(&name, &source)
                    .map_err(|e| WireError::from(&e))?;
                Ok(analysis_json(&artifacts))
            }
            Op::Run => {
                let (name, source) = self.resolve_program(req)?;
                let session = self.session(&req.tenant);
                let shard = self.shard(&req.tenant, &name);
                let mut run = RunRequest::new(&name, &source)
                    .opt_level(req.opt_level)
                    .mode(req.mode)
                    .validation(req.validation())
                    .policy(req.policy.clone())
                    .team_group(shard + 1);
                if let Some(engine) = &req.engine {
                    run = run.engine(engine);
                }
                if let Some(threads) = req.threads {
                    run = run.threads(threads);
                }
                if let Some(scale) = req.scale {
                    run = run.scale(scale);
                }
                if let Some(seed) = req.seed {
                    run = run.seed(seed);
                }
                let outcome = session.run(&run).map_err(|e| WireError::from(&e))?;
                Ok(if req.include_heap {
                    outcome.to_json_with_heap()
                } else {
                    outcome.to_json()
                })
            }
            Op::Tune => {
                let (name, source) = self.resolve_program(req)?;
                let session = self.session(&req.tenant);
                let shard = self.shard(&req.tenant, &name);
                let mut run = RunRequest::new(&name, &source).team_group(shard + 1);
                if let Some(threads) = req.threads {
                    run = run.threads(threads);
                }
                if let Some(scale) = req.scale {
                    run = run.scale(scale);
                }
                if let Some(seed) = req.seed {
                    run = run.seed(seed);
                }
                let config = TunerConfig {
                    budget_trials: req.budget_trials,
                    ..TunerConfig::default()
                };
                let outcome = session
                    .tune(&run, &config)
                    .map_err(|e| WireError::from(&e))?;
                Ok(outcome.to_json())
            }
        }
    }

    /// The `stats` endpoint payload: shard count, per-tenant cache
    /// statistics, and the transport/endpoint metrics.
    pub fn stats_json(&self) -> String {
        let tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        let tenants_json = json::object(tenants.iter().map(|(name, session)| {
            let cache = session.cache_stats();
            let tuner = session.tuner_stats();
            (
                name.as_str(),
                json::object([
                    ("hits", cache.hits.to_string()),
                    ("misses", cache.misses.to_string()),
                    ("evictions", cache.evictions.to_string()),
                    ("entries", cache.entries.to_string()),
                    (
                        "capacity",
                        cache
                            .capacity
                            .map(|c| c.to_string())
                            .unwrap_or_else(|| "null".to_string()),
                    ),
                    ("bytes", cache.bytes.to_string()),
                    (
                        "capacity_bytes",
                        cache
                            .capacity_bytes
                            .map(|c| c.to_string())
                            .unwrap_or_else(|| "null".to_string()),
                    ),
                    ("policy", json::string(cache.policy)),
                    ("tuned_searches", tuner.searches.to_string()),
                    ("tuned_hits", tuner.hits.to_string()),
                ]),
            )
        }));
        json::object([
            ("shards", self.config.shards.to_string()),
            ("tenants", tenants_json),
            ("metrics", self.stats.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonin;
    use crate::protocol::parse_request;

    fn service() -> Service {
        Service::new(ServiceConfig::default())
    }

    #[test]
    fn sharding_is_stable_and_in_range() {
        let s = service();
        let a = s.shard("default", "fig2_ua_transfer");
        assert_eq!(a, s.shard("default", "fig2_ua_transfer"));
        assert!(a < 2);
        // The separator byte keeps ("ab", "c") and ("a", "bc") distinct
        // inputs (they may still collide mod shards, but hash differently).
        let many: std::collections::BTreeSet<usize> = (0..32)
            .map(|i| s.shard("default", &format!("k{i}")))
            .collect();
        assert!(!many.is_empty());
    }

    #[test]
    fn tenants_get_isolated_sessions_with_configured_bounds() {
        let s = Service::new(ServiceConfig {
            shards: 2,
            cache_capacity: Some(8),
            cache_capacity_bytes: Some(1 << 20),
        });
        let a = s.session("a");
        let b = s.session("b");
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(Arc::ptr_eq(&a, &s.session("a")));
        assert_eq!(a.cache_stats().capacity, Some(8));
        assert_eq!(a.cache_stats().capacity_bytes, Some(1 << 20));

        // Compiling in tenant a leaves tenant b's counters untouched.
        let req =
            parse_request(r#"{"op":"analyze","tenant":"a","kernel":"fig2_ua_transfer"}"#).unwrap();
        s.dispatch(&req).unwrap();
        assert_eq!(s.session("a").cache_stats().misses, 1);
        assert_eq!(s.session("b").cache_stats().misses, 0);
    }

    #[test]
    fn analyze_run_engines_stats_dispatch() {
        let s = service();
        let analyze = parse_request(r#"{"op":"analyze","kernel":"fig2_ua_transfer"}"#).unwrap();
        let report = jsonin::parse(&s.dispatch(&analyze).unwrap()).unwrap();
        assert!(report.get("verdicts").and_then(|v| v.as_arr()).is_some());

        let run = parse_request(
            r#"{"op":"run","kernel":"fig2_ua_transfer","threads":2,"scale":48,
                "validate":true,"include_heap":true}"#,
        )
        .unwrap();
        let outcome = jsonin::parse(&s.dispatch(&run).unwrap()).unwrap();
        assert_eq!(
            outcome.get("program").and_then(|p| p.as_str()),
            Some("fig2_ua_transfer")
        );
        assert_eq!(
            outcome
                .get("validation")
                .and_then(|v| v.get("heaps_match"))
                .and_then(|h| h.as_bool()),
            Some(true)
        );
        assert!(outcome.get("heap").and_then(|h| h.get("arrays")).is_some());

        // Cache hit on the second run of the same program.
        let again = jsonin::parse(&s.dispatch(&run).unwrap()).unwrap();
        assert_eq!(again.get("cache_hit").and_then(|c| c.as_bool()), Some(true));

        let engines = parse_request(r#"{"op":"engines"}"#).unwrap();
        let listed = jsonin::parse(&s.dispatch(&engines).unwrap()).unwrap();
        assert!(listed.get("engines").and_then(|e| e.as_arr()).is_some());

        let stats = parse_request(r#"{"op":"stats"}"#).unwrap();
        let snapshot = jsonin::parse(&s.dispatch(&stats).unwrap()).unwrap();
        let default_tenant = snapshot
            .get("tenants")
            .and_then(|t| t.get("default"))
            .unwrap();
        // analyze compiled it once; both runs then hit the cache.
        assert_eq!(
            default_tenant.get("misses").and_then(|m| m.as_i64()),
            Some(1)
        );
        assert_eq!(default_tenant.get("hits").and_then(|m| m.as_i64()), Some(2));
        assert!(
            default_tenant
                .get("bytes")
                .and_then(|b| b.as_i64())
                .unwrap()
                > 0
        );
    }

    #[test]
    fn tune_dispatches_and_stats_count_tuned_policies() {
        let s = service();
        let tune = parse_request(
            r#"{"op":"tune","kernel":"fig2_ua_transfer","threads":2,"scale":40,
                "budget_trials":4}"#,
        )
        .unwrap();
        let outcome = jsonin::parse(&s.dispatch(&tune).unwrap()).unwrap();
        assert_eq!(
            outcome.get("program").and_then(|p| p.as_str()),
            Some("fig2_ua_transfer")
        );
        assert_eq!(
            outcome.get("provenance").and_then(|p| p.as_str()),
            Some("tuned-search")
        );
        assert!(outcome.get("winner").and_then(|w| w.get("label")).is_some());

        // The same shape reapplies the persisted winner: no re-search.
        let again = jsonin::parse(&s.dispatch(&tune).unwrap()).unwrap();
        assert_eq!(
            again.get("provenance").and_then(|p| p.as_str()),
            Some("tuned-cache")
        );

        // A tuned run applies it too, and reports the provenance.
        let run = parse_request(
            r#"{"op":"run","kernel":"fig2_ua_transfer","threads":2,"scale":40,
                "policy":"tuned","validate":true}"#,
        )
        .unwrap();
        let run_out = jsonin::parse(&s.dispatch(&run).unwrap()).unwrap();
        assert_eq!(
            run_out.get("policy").and_then(|p| p.as_str()),
            Some("tuned")
        );
        assert_eq!(
            run_out.get("policy_provenance").and_then(|p| p.as_str()),
            Some("tuned-cache")
        );

        let stats = parse_request(r#"{"op":"stats"}"#).unwrap();
        let snapshot = jsonin::parse(&s.dispatch(&stats).unwrap()).unwrap();
        let tenant = snapshot
            .get("tenants")
            .and_then(|t| t.get("default"))
            .unwrap();
        assert_eq!(
            tenant.get("tuned_searches").and_then(|v| v.as_i64()),
            Some(1)
        );
        assert_eq!(tenant.get("tuned_hits").and_then(|v| v.as_i64()), Some(2));
    }

    #[test]
    fn unknown_names_map_to_wire_errors() {
        let s = service();
        let req = parse_request(r#"{"op":"run","kernel":"nope"}"#).unwrap();
        let err = s.dispatch(&req).unwrap_err();
        assert_eq!((err.class, err.exit_code), ("unknown_kernel", 5));

        let req = parse_request(r#"{"op":"run","source":"x = 1;","engine":"jit"}"#).unwrap();
        let err = s.dispatch(&req).unwrap_err();
        assert_eq!((err.class, err.exit_code), ("unknown_engine", 5));

        let req = parse_request(r#"{"op":"analyze","source":"x = "}"#).unwrap();
        let err = s.dispatch(&req).unwrap_err();
        assert_eq!((err.class, err.exit_code), ("parse", 4));
    }
}
