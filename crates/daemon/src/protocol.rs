//! The `sspard` wire protocol: newline-delimited JSON requests and
//! responses.
//!
//! One request object per line, one response object per line, in order.
//! Requests name an operation (`"op"`); responses are either
//! `{"ok":true,"op":…,"result":…}` or `{"ok":false,"error":{…}}`.  An
//! optional request `"id"` (string or integer) is echoed back verbatim so
//! clients can correlate pipelined traffic.
//!
//! Error objects carry a stable `class` (see [`WireError`]) and, for
//! failures originating in the execution stack, the same stable
//! `exit_code` the `sspar` CLI would have exited with — the daemon is the
//! CLI's contract over a socket.

use crate::jsonin::{self, Value};
use ss_interp::json;
use ss_interp::{ExecutionMode, OptLevel, RunPolicy, SsError, ValidationMode};

/// The operations a request line can name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Compile (or fetch from the tenant's cache) and return the analysis
    /// report — no execution.
    Analyze,
    /// Compile and execute, returning the stable `RunOutcome` JSON.
    Run,
    /// Search the execution-policy space for the program and input shape,
    /// persist the winner in the tenant's cache, and return the search
    /// outcome (`TuneOutcome` JSON).
    Tune,
    /// The engine registry (names, capabilities, opt levels).
    Engines,
    /// Daemon-wide counters: per-endpoint latency percentiles, queue
    /// rejections, per-tenant cache statistics.
    Stats,
    /// Graceful drain: stop accepting, finish in-flight work, exit.
    Shutdown,
}

impl Op {
    /// The wire name (`"op"` field value).
    pub fn name(self) -> &'static str {
        match self {
            Op::Analyze => "analyze",
            Op::Run => "run",
            Op::Tune => "tune",
            Op::Engines => "engines",
            Op::Stats => "stats",
            Op::Shutdown => "shutdown",
        }
    }
}

/// A parsed request line.
#[derive(Debug, Clone)]
pub struct Request {
    /// The operation.
    pub op: Op,
    /// Client correlation id, echoed into the response (already rendered
    /// as a JSON value: quoted string or bare integer).
    pub id: Option<String>,
    /// Session namespace; tenants share nothing but the process.
    pub tenant: String,
    /// Catalogue kernel name (`kernel`) — exclusive with `source`.
    pub kernel: Option<String>,
    /// Program name for inline `source` (defaults to `"inline"`).
    pub name: Option<String>,
    /// Inline mini-C source — exclusive with `kernel`.
    pub source: Option<String>,
    /// Engine name (registry default when absent).
    pub engine: Option<String>,
    /// Optimization level (default `O1`).
    pub opt_level: OptLevel,
    /// Worker threads for the parallel leg (engine default when absent).
    pub threads: Option<usize>,
    /// Input synthesis scale (session default when absent).
    pub scale: Option<i64>,
    /// Input synthesis seed (session default when absent).
    pub seed: Option<u64>,
    /// Run every engine and diff final heaps (differential validation).
    pub validate: bool,
    /// Embed the final heap in the `run` response.
    pub include_heap: bool,
    /// Execution mode: `"both"` (default), `"serial"`, `"parallel"`.
    pub mode: ExecutionMode,
    /// How `run` picks execution options: `"default"` (the request's own
    /// knobs) or `"tuned"` (search-or-reapply the persisted best policy).
    pub policy: RunPolicy,
    /// `tune`: cap on measured trials (`None` = the full pruned space).
    pub budget_trials: Option<usize>,
}

/// A structured wire failure: a stable machine-readable `class`, a human
/// `message`, and the CLI-compatible `exit_code` of the failure class
/// (transport-layer classes reuse 2, the usage code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Stable class label: `malformed`, `oversized`, `timeout`,
    /// `overloaded`, `shutting_down`, or an execution class (`parse`,
    /// `unknown_kernel`, `unknown_engine`, `unsupported`, `runtime`,
    /// `validation`, `usage`, `io`).
    pub class: &'static str,
    /// Human-readable description.
    pub message: String,
    /// The exit code `sspar` maps this failure class to.
    pub exit_code: i32,
}

impl WireError {
    /// A request line that is not valid JSON or not a valid request shape.
    pub fn malformed(message: impl Into<String>) -> WireError {
        WireError {
            class: "malformed",
            message: message.into(),
            exit_code: 2,
        }
    }

    /// A request line exceeding the configured byte cap.
    pub fn oversized(limit: usize) -> WireError {
        WireError {
            class: "oversized",
            message: format!("request line exceeds {limit} bytes"),
            exit_code: 2,
        }
    }

    /// An idle connection exceeding the configured read timeout.
    pub fn timeout(limit_ms: u64) -> WireError {
        WireError {
            class: "timeout",
            message: format!("no complete request line within {limit_ms} ms"),
            exit_code: 2,
        }
    }

    /// Admission control: the bounded request queue is full.
    pub fn overloaded(queue: usize) -> WireError {
        WireError {
            class: "overloaded",
            message: format!("request queue full ({queue} pending); retry later"),
            exit_code: 2,
        }
    }

    /// The daemon is draining and no longer admits requests.
    pub fn shutting_down() -> WireError {
        WireError {
            class: "shutting_down",
            message: "daemon is draining; no new requests admitted".to_string(),
            exit_code: 2,
        }
    }
}

impl From<&SsError> for WireError {
    fn from(e: &SsError) -> WireError {
        let class = match e {
            SsError::Usage(_) => "usage",
            SsError::Io { .. } => "io",
            SsError::Parse(_) => "parse",
            SsError::UnknownKernel(_) => "unknown_kernel",
            SsError::UnknownEngine { .. } => "unknown_engine",
            SsError::Unsupported { .. } => "unsupported",
            SsError::Runtime(_) => "runtime",
            SsError::Validation { .. } => "validation",
        };
        WireError {
            class,
            message: e.to_string(),
            exit_code: e.exit_code(),
        }
    }
}

/// Renders a success response line (no trailing newline).
pub fn ok_response(id: Option<&str>, op: Op, result: String) -> String {
    let mut fields = vec![("ok", "true".to_string())];
    if let Some(id) = id {
        fields.push(("id", id.to_string()));
    }
    fields.push(("op", json::string(op.name())));
    fields.push(("result", result));
    json::object(fields)
}

/// Renders an error response line (no trailing newline).
pub fn error_response(id: Option<&str>, error: &WireError) -> String {
    let mut fields = vec![("ok", "false".to_string())];
    if let Some(id) = id {
        fields.push(("id", id.to_string()));
    }
    fields.push((
        "error",
        json::object([
            ("class", json::string(error.class)),
            ("message", json::string(&error.message)),
            ("exit_code", error.exit_code.to_string()),
        ]),
    ));
    json::object(fields)
}

/// Parses one request line.  Unknown fields are ignored (forward
/// compatibility); unknown `op`s, type mismatches and contradictory
/// program selectors are [`WireError::malformed`].
pub fn parse_request(line: &str) -> Result<Request, WireError> {
    let value = jsonin::parse(line).map_err(|e| WireError::malformed(format!("bad JSON: {e}")))?;
    let Value::Obj(_) = &value else {
        return Err(WireError::malformed("request must be a JSON object"));
    };

    let id = match value.get("id") {
        None | Some(Value::Null) => None,
        Some(Value::Str(s)) => Some(json::string(s)),
        Some(n @ Value::Num(_)) => Some(
            n.as_i64()
                .ok_or_else(|| WireError::malformed("'id' must be a string or integer"))?
                .to_string(),
        ),
        Some(_) => return Err(WireError::malformed("'id' must be a string or integer")),
    };

    let op = match value.get("op").and_then(Value::as_str) {
        Some("analyze") => Op::Analyze,
        Some("run") => Op::Run,
        Some("tune") => Op::Tune,
        Some("engines") => Op::Engines,
        Some("stats") => Op::Stats,
        Some("shutdown") => Op::Shutdown,
        Some(other) => {
            return Err(WireError::malformed(format!(
                "unknown op '{other}' (expected analyze|run|tune|engines|stats|shutdown)"
            )))
        }
        None => return Err(WireError::malformed("missing string field 'op'")),
    };

    let str_field = |key: &str| -> Result<Option<String>, WireError> {
        match value.get(key) {
            None | Some(Value::Null) => Ok(None),
            Some(Value::Str(s)) => Ok(Some(s.clone())),
            Some(_) => Err(WireError::malformed(format!("'{key}' must be a string"))),
        }
    };
    let int_field = |key: &str| -> Result<Option<i64>, WireError> {
        match value.get(key) {
            None | Some(Value::Null) => Ok(None),
            Some(v) => v
                .as_i64()
                .map(Some)
                .ok_or_else(|| WireError::malformed(format!("'{key}' must be an integer"))),
        }
    };
    let bool_field = |key: &str| -> Result<bool, WireError> {
        match value.get(key) {
            None | Some(Value::Null) => Ok(false),
            Some(v) => v
                .as_bool()
                .ok_or_else(|| WireError::malformed(format!("'{key}' must be a boolean"))),
        }
    };

    let kernel = str_field("kernel")?;
    let source = str_field("source")?;
    if matches!(op, Op::Analyze | Op::Run | Op::Tune) {
        match (&kernel, &source) {
            (Some(_), Some(_)) => {
                return Err(WireError::malformed(
                    "give either 'kernel' or 'source', not both",
                ))
            }
            (None, None) => {
                return Err(WireError::malformed(format!(
                    "'{}' needs a program: 'kernel' (catalogue name) or 'source'",
                    op.name()
                )))
            }
            _ => {}
        }
    }

    let opt_level = match int_field("opt_level")? {
        None => OptLevel::default(),
        Some(0) => OptLevel::O0,
        Some(1) => OptLevel::O1,
        Some(other) => {
            return Err(WireError::malformed(format!(
                "'opt_level' must be 0 or 1, got {other}"
            )))
        }
    };

    let mode = match str_field("mode")?.as_deref() {
        None | Some("both") => ExecutionMode::Both,
        Some("serial") => ExecutionMode::Serial,
        Some("parallel") => ExecutionMode::Parallel,
        Some(other) => {
            return Err(WireError::malformed(format!(
                "'mode' must be both|serial|parallel, got '{other}'"
            )))
        }
    };

    let policy = match str_field("policy")?.as_deref() {
        None | Some("default") => RunPolicy::Default,
        Some("tuned") => RunPolicy::Tuned,
        Some(other) => {
            return Err(WireError::malformed(format!(
                "'policy' must be default|tuned, got '{other}'"
            )))
        }
    };

    let positive = |key: &str, v: Option<i64>| -> Result<Option<usize>, WireError> {
        match v {
            None => Ok(None),
            Some(n) if n > 0 => Ok(Some(n as usize)),
            Some(n) => Err(WireError::malformed(format!(
                "'{key}' must be positive, got {n}"
            ))),
        }
    };

    Ok(Request {
        op,
        id,
        tenant: str_field("tenant")?.unwrap_or_else(|| "default".to_string()),
        kernel,
        name: str_field("name")?,
        source,
        engine: str_field("engine")?,
        opt_level,
        threads: positive("threads", int_field("threads")?)?,
        scale: int_field("scale")?,
        seed: int_field("seed")?.map(|s| s as u64),
        validate: bool_field("validate")?,
        include_heap: bool_field("include_heap")?,
        mode,
        policy,
        budget_trials: positive("budget_trials", int_field("budget_trials")?)?,
    })
}

impl Request {
    /// The validation mode the request asked for.
    pub fn validation(&self) -> ValidationMode {
        if self.validate {
            ValidationMode::Differential
        } else {
            ValidationMode::None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_requests_parse_with_defaults() {
        let r = parse_request(r#"{"op":"run","kernel":"fig2_ua_transfer"}"#).unwrap();
        assert_eq!(r.op, Op::Run);
        assert_eq!(r.tenant, "default");
        assert_eq!(r.kernel.as_deref(), Some("fig2_ua_transfer"));
        assert_eq!(r.opt_level, OptLevel::O1);
        assert!(!r.validate && !r.include_heap);
        assert_eq!(r.mode, ExecutionMode::Both);
        assert!(r.id.is_none());

        let r = parse_request(r#"{"op":"engines"}"#).unwrap();
        assert_eq!(r.op, Op::Engines);
    }

    #[test]
    fn full_requests_parse_every_knob() {
        let r = parse_request(
            r#"{"op":"run","id":7,"tenant":"t1","source":"x = 1;","name":"p",
               "engine":"bytecode","opt_level":0,"threads":2,"scale":64,"seed":9,
               "validate":true,"include_heap":true,"mode":"serial"}"#,
        )
        .unwrap();
        assert_eq!(r.id.as_deref(), Some("7"));
        assert_eq!(r.tenant, "t1");
        assert_eq!(r.opt_level, OptLevel::O0);
        assert_eq!((r.threads, r.scale, r.seed), (Some(2), Some(64), Some(9)));
        assert!(r.validate && r.include_heap);
        assert_eq!(r.mode, ExecutionMode::Serial);
        assert_eq!(r.validation(), ValidationMode::Differential);

        let r = parse_request(r#"{"op":"stats","id":"abc"}"#).unwrap();
        assert_eq!(r.id.as_deref(), Some("\"abc\""));
    }

    #[test]
    fn tune_and_policy_fields_parse() {
        let r =
            parse_request(r#"{"op":"tune","kernel":"sptrsv_levels","budget_trials":6}"#).unwrap();
        assert_eq!(r.op, Op::Tune);
        assert_eq!(r.budget_trials, Some(6));
        assert!(matches!(r.policy, RunPolicy::Default));

        let r = parse_request(r#"{"op":"run","kernel":"k","policy":"tuned"}"#).unwrap();
        assert!(matches!(r.policy, RunPolicy::Tuned));

        for (line, needle) in [
            (r#"{"op":"tune"}"#, "needs a program"),
            (
                r#"{"op":"run","kernel":"k","policy":"fastest"}"#,
                "default|tuned",
            ),
            (
                r#"{"op":"tune","kernel":"k","budget_trials":0}"#,
                "positive",
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.class, "malformed", "{line}");
            assert!(err.message.contains(needle), "{line}: {}", err.message);
        }
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        for (line, needle) in [
            ("not json", "bad JSON"),
            ("[1,2]", "must be a JSON object"),
            (r#"{"op":"dance"}"#, "unknown op"),
            (r#"{"kernel":"k"}"#, "missing string field 'op'"),
            (r#"{"op":"run"}"#, "needs a program"),
            (r#"{"op":"run","kernel":"k","source":"x = 1;"}"#, "not both"),
            (r#"{"op":"run","kernel":"k","opt_level":3}"#, "0 or 1"),
            (r#"{"op":"run","kernel":"k","threads":0}"#, "positive"),
            (r#"{"op":"run","kernel":"k","mode":"warp"}"#, "mode"),
            (r#"{"op":"run","kernel":"k","id":[1]}"#, "'id'"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.class, "malformed", "{line}");
            assert!(err.message.contains(needle), "{line}: {}", err.message);
        }
    }

    #[test]
    fn responses_render_and_echo_ids() {
        let ok = ok_response(Some("7"), Op::Run, "{}".to_string());
        assert_eq!(ok, r#"{"ok":true,"id":7,"op":"run","result":{}}"#);
        let err = error_response(Some("\"abc\""), &WireError::overloaded(4));
        assert!(err.starts_with(r#"{"ok":false,"id":"abc","error":{"class":"overloaded""#));
        assert!(err.contains("\"exit_code\":2"));
        let bare = error_response(None, &WireError::malformed("x"));
        assert!(bare.starts_with(r#"{"ok":false,"error":"#));
    }

    #[test]
    fn execution_errors_map_to_stable_classes_and_exit_codes() {
        let e = SsError::UnknownKernel("nope".to_string());
        let w = WireError::from(&e);
        assert_eq!((w.class, w.exit_code), ("unknown_kernel", 5));
        let e = SsError::Validation {
            program: "p".to_string(),
            mismatches: vec!["m".to_string()],
        };
        let w = WireError::from(&e);
        assert_eq!((w.class, w.exit_code), ("validation", 8));
    }
}
