//! Minimal JSON *parsing* for the daemon's wire protocol.
//!
//! The emission half lives in `ss_interp::json` (the single serializer
//! path of the whole system); this module is its inverse, just big enough
//! to read one request object per line: RFC 8259 values, string escapes
//! including `\uXXXX` (with surrogate pairs), and numbers via `f64`.
//! The vendored `serde` is a no-op stand-in, hence hand-rolled.

/// A parsed JSON value.  Object fields keep their source order; lookups
/// go through [`Value::get`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; see [`Value::as_i64`]).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, fields in source order (later duplicates shadow earlier
    /// ones in [`Value::get`]).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The value of field `key`, for objects (last occurrence wins).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, for strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, for booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number payload, for numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number payload as an integer, when it is one exactly (no
    /// fractional part, within `i64` range).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && n.abs() < 9.0e18 => Some(*n as i64),
            _ => None,
        }
    }

    /// The array elements, for arrays.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses exactly one JSON value from `input` (surrounding whitespace
/// allowed, trailing garbage rejected).  Errors carry a byte offset and a
/// short description.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

/// Nesting guard: a request line is one flat-ish object; anything deeper
/// than this is hostile or broken input, not a protocol message.
const MAX_DEPTH: usize = 64;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at byte {pos}")),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Value,
) -> Result<Value, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("expected '{literal}' at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number slice");
    text.parse::<f64>()
        .ok()
        .filter(|n| n.is_finite())
        .map(Value::Num)
        .ok_or_else(|| format!("invalid number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        *pos += 1;
                        let first = parse_hex4(bytes, pos)?;
                        let code = if (0xD800..0xDC00).contains(&first) {
                            // High surrogate: a \uXXXX low surrogate must
                            // follow to form one scalar value.
                            if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                *pos += 2;
                                let second = parse_hex4(bytes, pos)?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                return Err("lone high surrogate".to_string());
                            }
                        } else if (0xDC00..0xE000).contains(&first) {
                            return Err("lone low surrogate".to_string());
                        } else {
                            first
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("invalid code point {code:#x}"))?,
                        );
                        continue; // parse_hex4 already advanced past the digits
                    }
                    other => return Err(format!("invalid escape {other:?}")),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => {
                return Err(format!("unescaped control byte {c:#04x} in string"));
            }
            Some(_) => {
                // Copy one UTF-8 scalar (input is a &str, so boundaries
                // are valid by construction).
                let text = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid utf-8")?;
                let ch = text.chars().next().expect("non-empty checked above");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let slice = bytes
        .get(*pos..*pos + 4)
        .ok_or_else(|| "truncated \\u escape".to_string())?;
    let text = std::str::from_utf8(slice).map_err(|_| "non-ascii \\u escape".to_string())?;
    let code = u32::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape '{text}'"))?;
    *pos += 4;
    Ok(code)
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    *pos += 1; // consume '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-42").unwrap().as_i64(), Some(-42));
        assert_eq!(parse("1.5e2").unwrap().as_f64(), Some(150.0));
        assert_eq!(parse("1.5").unwrap().as_i64(), None);
        assert_eq!(parse(r#""hi""#).unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn strings_decode_escapes_and_surrogate_pairs() {
        assert_eq!(
            parse(r#""a\"b\\c\n\tA""#).unwrap().as_str(),
            Some("a\"b\\c\n\tA")
        );
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse("\"raw\ncontrol\"").is_err());
    }

    #[test]
    fn composites_parse_and_get_resolves_fields() {
        let v = parse(r#"{"op":"run","n":3,"flags":[1,2],"deep":{"x":null}}"#).unwrap();
        assert_eq!(v.get("op").and_then(Value::as_str), Some("run"));
        assert_eq!(v.get("n").and_then(Value::as_i64), Some(3));
        assert_eq!(
            v.get("flags").and_then(Value::as_arr).map(<[Value]>::len),
            Some(2)
        );
        assert_eq!(v.get("deep").and_then(|d| d.get("x")), Some(&Value::Null));
        assert_eq!(v.get("absent"), None);
    }

    #[test]
    fn duplicate_keys_shadow_and_errors_are_structured() {
        let v = parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_i64), Some(2));
        for bad in ["{", "[1,", r#"{"a"}"#, "tru", "1 2", "", "nan"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn round_trips_the_emitter_output() {
        // The emitter in ss_interp::json is the other half of the wire;
        // whatever it produces must come back unchanged.
        let emitted = ss_interp::json::object([
            ("s", ss_interp::json::string("x\n\"y\"")),
            ("n", ss_interp::json::number(2.5)),
            ("a", ss_interp::json::string_array(["p", "q"])),
        ]);
        let v = parse(&emitted).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x\n\"y\""));
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(2.5));
        assert_eq!(
            v.get("a").and_then(Value::as_arr).unwrap()[1].as_str(),
            Some("q")
        );
    }

    #[test]
    fn depth_is_bounded() {
        let mut hostile = String::new();
        for _ in 0..100 {
            hostile.push('[');
        }
        assert!(parse(&hostile).is_err());
    }
}
