//! Per-endpoint service metrics: request counts, error counts, and
//! latency percentiles over a bounded reservoir of recent samples.
//!
//! Everything is plain `std::sync` — a `Mutex` around small maps and
//! vectors is far below the noise floor of request handling (which
//! compiles and executes programs).  The JSON rendering goes through
//! `ss_interp::json`, like every other machine-readable surface.

use ss_interp::json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Most recent latency samples kept per endpoint; percentile error from
/// this cap is negligible for a p99 over steady traffic.
const RESERVOIR: usize = 4096;

#[derive(Debug, Default)]
struct EndpointStats {
    count: u64,
    errors: u64,
    /// Ring buffer of recent latencies in microseconds.
    samples: Vec<u64>,
    next: usize,
}

impl EndpointStats {
    fn record(&mut self, latency: Duration, ok: bool) {
        self.count += 1;
        if !ok {
            self.errors += 1;
        }
        let micros = latency.as_micros().min(u64::MAX as u128) as u64;
        if self.samples.len() < RESERVOIR {
            self.samples.push(micros);
        } else {
            self.samples[self.next] = micros;
            self.next = (self.next + 1) % RESERVOIR;
        }
    }
}

/// Sorted-copy nearest-rank percentile: the smallest sample such that at
/// least `p`% of the set is ≤ it (`rank = ⌈p/100 · N⌉`, 1-based); `None`
/// on an empty sample set.
pub fn percentile_micros(samples: &[u64], p: f64) -> Option<u64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    Some(sorted[(rank - 1).min(sorted.len() - 1)])
}

/// Daemon-wide metrics: one latency/count record per operation plus
/// transport-level rejection counters.
#[derive(Debug, Default)]
pub struct StatsRegistry {
    endpoints: Mutex<BTreeMap<&'static str, EndpointStats>>,
    overloaded: AtomicU64,
    rejected_malformed: AtomicU64,
    rejected_oversized: AtomicU64,
    timeouts: AtomicU64,
}

impl StatsRegistry {
    /// A fresh, all-zero registry.
    pub fn new() -> StatsRegistry {
        StatsRegistry::default()
    }

    /// Records one served request for `op` (`ok = false` for requests
    /// answered with an execution error).
    pub fn record(&self, op: &'static str, latency: Duration, ok: bool) {
        self.endpoints
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(op)
            .or_default()
            .record(latency, ok);
    }

    /// Counts a queue-full rejection.
    pub fn count_overloaded(&self) {
        self.overloaded.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a malformed request line.
    pub fn count_malformed(&self) {
        self.rejected_malformed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an oversized request line.
    pub fn count_oversized(&self) {
        self.rejected_oversized.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an idle-connection timeout.
    pub fn count_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Total queue-full rejections so far.
    pub fn overloaded_total(&self) -> u64 {
        self.overloaded.load(Ordering::Relaxed)
    }

    /// Requests served for `op` so far.
    pub fn served(&self, op: &str) -> u64 {
        self.endpoints
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(op)
            .map(|e| e.count)
            .unwrap_or(0)
    }

    /// The metrics as one JSON object:
    /// `{"endpoints":{op:{count,errors,p50_ms,p95_ms,p99_ms}},"rejected":{…}}`.
    pub fn to_json(&self) -> String {
        let endpoints = self.endpoints.lock().unwrap_or_else(|e| e.into_inner());
        let per_op = json::object(endpoints.iter().map(|(op, stats)| {
            let pct = |p: f64| {
                percentile_micros(&stats.samples, p)
                    .map(|micros| json::number(micros as f64 / 1000.0))
                    .unwrap_or_else(|| "null".to_string())
            };
            (
                *op,
                json::object([
                    ("count", stats.count.to_string()),
                    ("errors", stats.errors.to_string()),
                    ("p50_ms", pct(50.0)),
                    ("p95_ms", pct(95.0)),
                    ("p99_ms", pct(99.0)),
                ]),
            )
        }));
        json::object([
            ("endpoints", per_op),
            (
                "rejected",
                json::object([
                    ("overloaded", self.overloaded_total().to_string()),
                    (
                        "malformed",
                        self.rejected_malformed.load(Ordering::Relaxed).to_string(),
                    ),
                    (
                        "oversized",
                        self.rejected_oversized.load(Ordering::Relaxed).to_string(),
                    ),
                    (
                        "timeouts",
                        self.timeouts.load(Ordering::Relaxed).to_string(),
                    ),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        // Nearest-rank: the p50 of 1..=100 is 50, not 51 — the smallest
        // sample with at least half the set at or below it.
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_micros(&samples, 50.0), Some(50));
        assert_eq!(percentile_micros(&samples, 95.0), Some(95));
        assert_eq!(percentile_micros(&samples, 99.0), Some(99));
        assert_eq!(percentile_micros(&samples, 100.0), Some(100));
        assert_eq!(percentile_micros(&[], 50.0), None);
        assert_eq!(percentile_micros(&[7], 99.0), Some(7));
        // Odd-sized set: p50 of {10, 20, 30} is the true median 20.
        assert_eq!(percentile_micros(&[10, 20, 30], 50.0), Some(20));
        // A sub-1-rank percentile clamps to the smallest sample.
        assert_eq!(percentile_micros(&samples, 0.1), Some(1));
    }

    #[test]
    fn recording_accumulates_and_renders() {
        let stats = StatsRegistry::new();
        stats.record("run", Duration::from_millis(2), true);
        stats.record("run", Duration::from_millis(4), false);
        stats.record("analyze", Duration::from_micros(500), true);
        stats.count_overloaded();
        stats.count_malformed();
        assert_eq!(stats.served("run"), 2);
        assert_eq!(stats.served("stats"), 0);
        assert_eq!(stats.overloaded_total(), 1);

        let rendered = stats.to_json();
        let v = crate::jsonin::parse(&rendered).unwrap();
        let run = v.get("endpoints").and_then(|e| e.get("run")).unwrap();
        assert_eq!(run.get("count").and_then(|c| c.as_i64()), Some(2));
        assert_eq!(run.get("errors").and_then(|c| c.as_i64()), Some(1));
        assert!(run.get("p99_ms").and_then(|c| c.as_f64()).unwrap() >= 2.0);
        let rejected = v.get("rejected").unwrap();
        assert_eq!(rejected.get("overloaded").and_then(|c| c.as_i64()), Some(1));
        assert_eq!(rejected.get("malformed").and_then(|c| c.as_i64()), Some(1));
        assert_eq!(rejected.get("oversized").and_then(|c| c.as_i64()), Some(0));
    }

    #[test]
    fn reservoir_is_bounded() {
        let stats = StatsRegistry::new();
        for i in 0..(RESERVOIR as u64 + 100) {
            stats.record("run", Duration::from_micros(i), true);
        }
        let guard = stats.endpoints.lock().unwrap();
        let run = guard.get("run").unwrap();
        assert_eq!(run.samples.len(), RESERVOIR);
        assert_eq!(run.count, RESERVOIR as u64 + 100);
    }
}
