//! # ss-daemon — `sspard`, the long-running analysis/execution service
//!
//! Everything below `sspar` is a library (`ss_interp::Session` is
//! `Send + Sync`, artifacts are cached content-addressed, engines are
//! trait objects); this crate puts a **server** on top of it: a daemon
//! that keeps sessions — and their compiled-artifact caches and warm
//! thread teams — alive across many clients, so the per-request cost of
//! an `analyze` or `run` collapses to the work itself.
//!
//! The pieces:
//!
//! * [`protocol`] — the newline-delimited JSON wire format: `analyze`,
//!   `run`, `engines`, `stats`, `shutdown` requests; `{"ok":…}` response
//!   envelopes whose payloads are the *same* stable JSON schemas the CLI
//!   prints (one serializer path, `ss_interp::json`);
//! * [`jsonin`] — the matching minimal JSON parser (the vendored `serde`
//!   is a no-op stub);
//! * [`service`] — multi-tenant dispatch: one [`Session`] per tenant,
//!   requests hashed onto persistent thread-team **shards**
//!   (`ss_runtime::with_shared_team_in` groups);
//! * [`server`] — the std-thread TCP server: nonblocking acceptor,
//!   per-connection readers with byte-capped framing and idle timeouts,
//!   a bounded worker queue whose overflow answers a structured
//!   `overloaded` error, and graceful drain on `shutdown`;
//! * [`stats`] — per-endpoint request counts and latency percentiles,
//!   served by the `stats` op;
//! * [`load`] — the `sspar-load` closed-loop load generator (catalogue ×
//!   engines × opt levels at configurable concurrency).
//!
//! Binaries: `sspard` (the server) and `sspar-load` (the load client).
//!
//! ```
//! use ss_daemon::server::{self, DaemonConfig};
//!
//! let mut daemon = server::start(DaemonConfig::default()).unwrap();
//! let addr = daemon.local_addr().to_string();
//! let reply = server::request(
//!     &addr,
//!     r#"{"op":"run","kernel":"fig2_ua_transfer","threads":2,"scale":32}"#,
//! )
//! .unwrap();
//! assert!(reply.starts_with(r#"{"ok":true"#));
//! server::request(&addr, r#"{"op":"shutdown"}"#).unwrap();
//! daemon.join();
//! ```
//!
//! [`Session`]: ss_interp::Session

#![warn(missing_docs)]

pub mod jsonin;
pub mod load;
pub mod protocol;
pub mod server;
pub mod service;
pub mod stats;

pub use load::{run_load, LoadConfig, LoadReport, LoadRow};
pub use protocol::{Op, Request, WireError};
pub use server::{request, start, Client, DaemonConfig, DaemonHandle};
pub use service::{Service, ServiceConfig};
pub use stats::StatsRegistry;
