//! `sspar-load`: a closed-loop load generator replaying the study-kernel
//! catalogue against a running `sspard`.
//!
//! The request mix is enumerated from the daemon itself: the `engines`
//! endpoint lists every engine and its distinguished opt levels, and the
//! catalogue names come from `ss_npb::study_kernels` — so the matrix is
//! catalogue × engines × opt levels by construction, never a hardcoded
//! list that can drift.  Each concurrent client owns one connection and
//! replays its share of the matrix `iters` times; the report aggregates
//! throughput and latency percentiles per (engine, opt level) row.

use crate::jsonin::{self, Value};
use crate::server::Client;
use crate::stats::percentile_micros;
use std::collections::BTreeMap;
use std::time::Instant;

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Daemon address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Concurrent client connections.
    pub concurrency: usize,
    /// Times each (kernel, engine, opt level) cell is requested.
    pub iters: usize,
    /// Input-synthesis scale sent with every `run`.
    pub scale: i64,
    /// Worker threads requested per run.
    pub threads: usize,
    /// Restrict to these engines (empty = all registered engines).
    pub engines: Vec<String>,
    /// Add a `policy:"tuned"` leg per kernel, so the report shows the
    /// tuned row next to the fixed engine/opt-level rows.
    pub tuned: bool,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            addr: "127.0.0.1:7878".to_string(),
            concurrency: 4,
            iters: 3,
            scale: 64,
            threads: 2,
            engines: Vec::new(),
            tuned: false,
        }
    }
}

/// Aggregated results for one (engine, opt level) row of the matrix.
#[derive(Debug, Clone)]
pub struct LoadRow {
    /// `engine@O<n>` label.
    pub label: String,
    /// Requests issued.
    pub requests: usize,
    /// Requests answered with `"ok":false` or a transport error.
    pub errors: usize,
    /// Completed requests per second of wall-clock.
    pub throughput: f64,
    /// Median latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
}

/// The whole load run: per-row aggregates plus the overall request rate.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// One row per (engine, opt level), engine order as registered.
    pub rows: Vec<LoadRow>,
    /// Total requests issued.
    pub total_requests: usize,
    /// Total failed requests.
    pub total_errors: usize,
    /// Wall-clock of the whole run, seconds.
    pub wall_seconds: f64,
}

impl LoadReport {
    /// Requests per second over the whole run.
    pub fn overall_throughput(&self) -> f64 {
        self.total_requests as f64 / self.wall_seconds.max(1e-9)
    }
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<14} {:>8} {:>7} {:>10} {:>9} {:>9} {:>9}",
            "engine", "requests", "errors", "req/s", "p50 ms", "p95 ms", "p99 ms"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<14} {:>8} {:>7} {:>10.1} {:>9.2} {:>9.2} {:>9.2}",
                row.label,
                row.requests,
                row.errors,
                row.throughput,
                row.p50_ms,
                row.p95_ms,
                row.p99_ms
            )?;
        }
        write!(
            f,
            "total: {} requests, {} errors, {:.2}s wall, {:.1} req/s",
            self.total_requests,
            self.total_errors,
            self.wall_seconds,
            self.overall_throughput()
        )
    }
}

/// One cell of the request matrix.
#[derive(Debug, Clone)]
struct Cell {
    kernel: String,
    engine: String,
    opt_level: u8,
    /// Run under `policy:"tuned"` instead of a fixed engine/opt level.
    tuned: bool,
}

impl Cell {
    fn label(&self) -> String {
        if self.tuned {
            "tuned".to_string()
        } else {
            format!("{}@O{}", self.engine, self.opt_level)
        }
    }

    fn request_line(&self, cfg: &LoadConfig) -> String {
        use ss_interp::json;
        let mut fields = vec![
            ("op", json::string("run")),
            ("kernel", json::string(&self.kernel)),
        ];
        if self.tuned {
            fields.push(("policy", json::string("tuned")));
        } else {
            fields.push(("engine", json::string(&self.engine)));
            fields.push(("opt_level", self.opt_level.to_string()));
        }
        fields.push(("threads", cfg.threads.to_string()));
        fields.push(("scale", cfg.scale.to_string()));
        json::object(fields)
    }
}

/// Asks the daemon's `engines` endpoint for the (engine, opt level)
/// pairs, keeping `only` (all when empty).
fn enumerate_engines(addr: &str, only: &[String]) -> std::io::Result<Vec<(String, u8)>> {
    let response = crate::server::request(addr, r#"{"op":"engines"}"#)?;
    let parsed = jsonin::parse(&response)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let engines = parsed
        .get("result")
        .and_then(|r| r.get("engines"))
        .and_then(Value::as_arr)
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "no engines in response")
        })?;
    let mut pairs = Vec::new();
    for engine in engines {
        let Some(name) = engine.get("name").and_then(Value::as_str) else {
            continue;
        };
        if !only.is_empty() && !only.iter().any(|o| o == name) {
            continue;
        }
        let levels = engine
            .get("opt_levels")
            .and_then(Value::as_arr)
            .map(|l| l.to_vec())
            .unwrap_or_default();
        for level in levels {
            // Levels are rendered "O0"/"O1" by the registry surface.
            if let Some(n) = level.as_str().and_then(|s| s.strip_prefix('O')) {
                if let Ok(n) = n.parse::<u8>() {
                    pairs.push((name.to_string(), n));
                }
            }
        }
    }
    Ok(pairs)
}

/// Runs the load: catalogue × engines × opt levels, `iters` times each,
/// spread over `concurrency` connections.
pub fn run_load(cfg: &LoadConfig) -> std::io::Result<LoadReport> {
    let engines = enumerate_engines(&cfg.addr, &cfg.engines)?;
    let kernels: Vec<String> = ss_npb::study_kernels()
        .into_iter()
        .map(|k| k.name.to_string())
        .collect();

    let mut cells = Vec::new();
    for _ in 0..cfg.iters.max(1) {
        for kernel in &kernels {
            for (engine, opt_level) in &engines {
                cells.push(Cell {
                    kernel: kernel.clone(),
                    engine: engine.clone(),
                    opt_level: *opt_level,
                    tuned: false,
                });
            }
            if cfg.tuned {
                cells.push(Cell {
                    kernel: kernel.clone(),
                    engine: String::new(),
                    opt_level: 0,
                    tuned: true,
                });
            }
        }
    }

    let concurrency = cfg.concurrency.max(1);
    let started = Instant::now();
    let results: Vec<(String, u64, bool)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|worker| {
                let cells = &cells;
                scope.spawn(move || {
                    let mut client = match Client::connect(&cfg.addr) {
                        Ok(c) => c,
                        Err(_) => {
                            // Whole-connection failure: report every
                            // assigned cell as errored.
                            return cells
                                .iter()
                                .skip(worker)
                                .step_by(concurrency)
                                .map(|c| (c.label(), 0, false))
                                .collect::<Vec<_>>();
                        }
                    };
                    cells
                        .iter()
                        .skip(worker)
                        .step_by(concurrency)
                        .map(|cell| {
                            let line = cell.request_line(cfg);
                            let cell_started = Instant::now();
                            let ok = match client.call(&line) {
                                Ok(response) => jsonin::parse(&response)
                                    .ok()
                                    .and_then(|v| v.get("ok").and_then(Value::as_bool))
                                    .unwrap_or(false),
                                Err(_) => false,
                            };
                            let micros = cell_started.elapsed().as_micros() as u64;
                            (cell.label(), micros, ok)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let wall_seconds = started.elapsed().as_secs_f64();

    let mut by_label: BTreeMap<String, (Vec<u64>, usize)> = BTreeMap::new();
    for (label, micros, ok) in &results {
        let entry = by_label.entry(label.clone()).or_default();
        entry.0.push(*micros);
        if !ok {
            entry.1 += 1;
        }
    }

    // Rows in the matrix's engine order, not BTreeMap order; the tuned
    // leg (when enabled) comes last so the before/after reads top-down.
    let mut labels: Vec<String> = engines
        .iter()
        .map(|(engine, opt_level)| format!("{engine}@O{opt_level}"))
        .collect();
    if cfg.tuned {
        labels.push("tuned".to_string());
    }
    let mut rows = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for label in labels {
        if !seen.insert(label.clone()) {
            continue;
        }
        if let Some((latencies, errors)) = by_label.get(&label) {
            let pct = |p: f64| {
                percentile_micros(latencies, p)
                    .map(|m| m as f64 / 1000.0)
                    .unwrap_or(0.0)
            };
            rows.push(LoadRow {
                label,
                requests: latencies.len(),
                errors: *errors,
                throughput: latencies.len() as f64 / wall_seconds.max(1e-9),
                p50_ms: pct(50.0),
                p95_ms: pct(95.0),
                p99_ms: pct(99.0),
            });
        }
    }

    Ok(LoadReport {
        total_requests: results.len(),
        total_errors: results.iter().filter(|(_, _, ok)| !ok).count(),
        rows,
        wall_seconds,
    })
}
