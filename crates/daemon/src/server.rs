//! The `sspard` TCP server: bounded acceptor/worker pool over std
//! threads, newline-delimited JSON framing, admission control, and
//! graceful drain.
//!
//! The vendored async stacks are offline no-op stubs, so the daemon is
//! deliberately plain `std::net` + `std::thread`:
//!
//! * **acceptor** — one thread on a nonblocking listener, polling so it
//!   can observe the drain flag between accepts;
//! * **readers** — one thread per connection, framing request lines by
//!   hand (byte-capped, idle-timed) and writing responses back in order;
//! * **workers** — a fixed pool consuming a *bounded* `sync_channel`;
//!   [`SyncSender::try_send`] failing fast is the admission-control
//!   mechanism: a full queue answers `overloaded` instead of queueing
//!   unboundedly.
//!
//! Shutdown (the `shutdown` op) flips one flag: the acceptor stops
//! accepting and exits (dropping its queue sender), readers finish the
//! response in flight and close, and the workers drain whatever is still
//! queued before the channel disconnects — a graceful drain with no
//! dropped responses.

use crate::protocol::{self, Op, WireError};
use crate::service::{Service, ServiceConfig};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything the daemon can be told at startup.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Listen address (`127.0.0.1:0` picks a free port; see
    /// [`DaemonHandle::local_addr`]).
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Persistent thread-team shards (see `Service::shard`).
    pub shards: usize,
    /// Bounded request-queue depth; one more `try_send` answers
    /// `overloaded`.
    pub queue: usize,
    /// Maximum request-line length in bytes; longer lines answer
    /// `oversized` and close the connection.
    pub max_line_bytes: usize,
    /// An idle connection (no complete line) is answered `timeout` and
    /// closed after this long.
    pub idle_timeout: Duration,
    /// Per-tenant artifact-cache entry bound.
    pub cache_capacity: Option<usize>,
    /// Per-tenant artifact-cache byte bound.
    pub cache_capacity_bytes: Option<usize>,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            shards: 2,
            queue: 64,
            max_line_bytes: 1 << 20,
            idle_timeout: Duration::from_secs(30),
            cache_capacity: None,
            cache_capacity_bytes: None,
        }
    }
}

/// How often blocked loops re-check the drain flag (and the granularity
/// of the idle-timeout accounting).
const TICK: Duration = Duration::from_millis(100);

/// One unit of queued work: a raw request line plus the channel its
/// response line must be sent down.
struct Job {
    line: String,
    respond: Sender<String>,
}

struct Shared {
    service: Service,
    draining: AtomicBool,
    config: DaemonConfig,
}

/// A running daemon: the listener's address plus the threads to join.
pub struct DaemonHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl DaemonHandle {
    /// The bound listen address (the OS-chosen port for `…:0` configs).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once a `shutdown` request (or [`DaemonHandle::drain`]) has
    /// started the drain.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Starts the drain without a wire request (used by tests and
    /// embedders; the `shutdown` op does exactly this).
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Waits for the acceptor and every worker to exit (i.e. for a drain
    /// to complete).  Joins are idempotent.
    pub fn join(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.drain();
        self.join();
    }
}

/// Binds, spawns the acceptor and worker pool, and returns immediately.
pub fn start(config: DaemonConfig) -> std::io::Result<DaemonHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let shared = Arc::new(Shared {
        service: Service::new(ServiceConfig {
            shards: config.shards,
            cache_capacity: config.cache_capacity,
            cache_capacity_bytes: config.cache_capacity_bytes,
        }),
        draining: AtomicBool::new(false),
        config: config.clone(),
    });

    let (queue_tx, queue_rx) = mpsc::sync_channel::<Job>(config.queue.max(1));
    let queue_rx = Arc::new(Mutex::new(queue_rx));

    let workers = (0..config.workers.max(1))
        .map(|_| {
            let shared = Arc::clone(&shared);
            let queue_rx = Arc::clone(&queue_rx);
            std::thread::spawn(move || worker_loop(&shared, &queue_rx))
        })
        .collect();

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || acceptor_loop(listener, &shared, queue_tx))
    };

    Ok(DaemonHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        workers,
    })
}

fn acceptor_loop(listener: TcpListener, shared: &Arc<Shared>, queue_tx: SyncSender<Job>) {
    // When the acceptor returns, its `queue_tx` clone dies with it; once
    // the last reader exits too the workers see a disconnected channel
    // and finish — the second half of the drain.
    while !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(shared);
                let queue_tx = queue_tx.clone();
                std::thread::spawn(move || connection_loop(stream, &shared, &queue_tx));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(TICK),
            // Transient accept errors (aborted handshakes etc.); the
            // listener itself stays healthy.
            Err(_) => std::thread::sleep(TICK),
        }
    }
}

fn worker_loop(shared: &Arc<Shared>, queue_rx: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the receiver lock only to *take* a job, never while
        // serving one.
        let job = match queue_rx.lock().unwrap_or_else(|e| e.into_inner()).recv() {
            Ok(job) => job,
            Err(_) => return, // all senders gone: drain complete
        };
        let response = serve_line(shared, &job.line);
        // A vanished reader (client hung up mid-request) is fine.
        let _ = job.respond.send(response);
    }
}

/// Parses and dispatches one request line, returning the response line.
fn serve_line(shared: &Arc<Shared>, line: &str) -> String {
    let started = Instant::now();
    let req = match protocol::parse_request(line) {
        Ok(req) => req,
        Err(e) => {
            shared.service.stats.count_malformed();
            return protocol::error_response(None, &e);
        }
    };
    if req.op == Op::Shutdown {
        shared.draining.store(true, Ordering::SeqCst);
    }
    let (response, ok) = match shared.service.dispatch(&req) {
        Ok(result) => (
            protocol::ok_response(req.id.as_deref(), req.op, result),
            true,
        ),
        Err(e) => (protocol::error_response(req.id.as_deref(), &e), false),
    };
    shared
        .service
        .stats
        .record(req.op.name(), started.elapsed(), ok);
    response
}

/// Per-connection reader: frames request lines by hand, enforcing the
/// byte cap and the idle timeout, and writes response lines in order.
fn connection_loop(stream: TcpStream, shared: &Arc<Shared>, queue_tx: &SyncSender<Job>) {
    let mut stream = stream;
    if stream.set_read_timeout(Some(TICK)).is_err() {
        return;
    }
    let config = &shared.config;
    let mut buffer: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    // The idle clock measures time since the last *completed* (served)
    // line, not since the last received byte: resetting on any received
    // bytes would let a client dripping one byte per tick hold the
    // connection open forever without ever finishing a request
    // (slow-loris).  The timeout therefore bounds time-to-complete-a-line.
    let mut last_line = Instant::now();
    let mut scanned = 0usize; // bytes of `buffer` already known newline-free

    loop {
        // Drain every complete line already buffered.
        while let Some(nl) = buffer[scanned..].iter().position(|&b| b == b'\n') {
            let line_end = scanned + nl;
            let line: Vec<u8> = buffer.drain(..=line_end).collect();
            scanned = 0;
            let line = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
            if !line.trim().is_empty() {
                if !admit_and_respond(&mut stream, shared, queue_tx, line) {
                    return;
                }
                if shared.draining.load(Ordering::SeqCst) {
                    return; // response in flight is done; drain closes us
                }
            }
            // Only a completed line buys the client another idle window
            // (measured from after its response was written, so slow
            // request processing is not billed to the client).
            last_line = Instant::now();
        }
        scanned = buffer.len();

        if buffer.len() > config.max_line_bytes {
            shared.service.stats.count_oversized();
            let error = WireError::oversized(config.max_line_bytes);
            let _ = write_line(&mut stream, &protocol::error_response(None, &error));
            return;
        }

        if last_line.elapsed() >= config.idle_timeout {
            shared.service.stats.count_timeout();
            let error = WireError::timeout(config.idle_timeout.as_millis() as u64);
            let _ = write_line(&mut stream, &protocol::error_response(None, &error));
            return;
        }

        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => buffer.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return, // connection-level failure
        }
    }
}

/// Admission control + response for one framed line.  Returns false when
/// the connection should close.
fn admit_and_respond(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    queue_tx: &SyncSender<Job>,
    line: String,
) -> bool {
    let (respond, response_rx) = mpsc::channel();
    match queue_tx.try_send(Job { line, respond }) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => {
            shared.service.stats.count_overloaded();
            let error = WireError::overloaded(shared.config.queue);
            return write_line(stream, &protocol::error_response(None, &error));
        }
        Err(TrySendError::Disconnected(_)) => {
            let _ = write_line(
                stream,
                &protocol::error_response(None, &WireError::shutting_down()),
            );
            return false;
        }
    }
    match response_rx.recv() {
        Ok(response) => write_line(stream, &response),
        Err(_) => false, // worker pool gone mid-request (hard stop)
    }
}

fn write_line(stream: &mut TcpStream, line: &str) -> bool {
    let mut bytes = Vec::with_capacity(line.len() + 1);
    bytes.extend_from_slice(line.as_bytes());
    bytes.push(b'\n');
    stream
        .write_all(&bytes)
        .and_then(|()| stream.flush())
        .is_ok()
}

// ---------------------------------------------------------------------------
// Client helpers (used by sspar-load, the CLI `request` command and tests).
// ---------------------------------------------------------------------------

/// A blocking NDJSON client over one TCP connection.
pub struct Client {
    stream: TcpStream,
    pending: Vec<u8>,
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
            pending: Vec::new(),
        })
    }

    /// Sends one request line and blocks for the matching response line.
    pub fn call(&mut self, line: &str) -> std::io::Result<String> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        self.read_line()
    }

    /// Blocks for the next response line without sending anything first
    /// (to observe server-initiated messages like the idle-timeout error).
    pub fn read_response(&mut self) -> std::io::Result<String> {
        self.read_line()
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(nl) = self.pending.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.pending.drain(..=nl).collect();
                return String::from_utf8(line[..line.len() - 1].to_vec())
                    .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e));
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "connection closed before a response line",
                ));
            }
            self.pending.extend_from_slice(&chunk[..n]);
        }
    }
}

/// One-shot convenience: connect, send `line`, return the response line.
pub fn request(addr: &str, line: &str) -> std::io::Result<String> {
    Client::connect(addr)?.call(line)
}
