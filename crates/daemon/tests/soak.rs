//! In-process soak of `sspard`: concurrent clients replaying the full
//! catalogue over real TCP against bit-exact expectations computed with
//! a plain single-threaded [`Session`], plus protocol-robustness checks
//! (malformed, oversized, idle-timeout, overload, graceful drain).
//!
//! Everything runs on loopback with OS-assigned ports, so the suite is
//! safe under `cargo test`'s default parallelism.

use ss_daemon::jsonin::{self, Value};
use ss_daemon::server::{self, Client, DaemonConfig};
use ss_interp::{heap_json, ExecutionMode, RunRequest, Session};
use std::collections::BTreeMap;
use std::time::Duration;

const SCALE: i64 = 48;
const SEED: u64 = 1234;
const CLIENTS: usize = 8;

fn start_daemon(config: DaemonConfig) -> (server::DaemonHandle, String) {
    let daemon = server::start(config).expect("bind loopback");
    let addr = daemon.local_addr().to_string();
    (daemon, addr)
}

fn parse_ok(response: &str) -> Value {
    let v = jsonin::parse(response).expect("response is valid JSON");
    assert_eq!(
        v.get("ok").and_then(Value::as_bool),
        Some(true),
        "expected ok response, got: {response}"
    );
    v.get("result").cloned().expect("ok responses carry result")
}

fn parse_err(response: &str) -> (String, i64) {
    let v = jsonin::parse(response).expect("response is valid JSON");
    assert_eq!(
        v.get("ok").and_then(Value::as_bool),
        Some(false),
        "expected error response, got: {response}"
    );
    let error = v.get("error").expect("error responses carry error");
    (
        error
            .get("class")
            .and_then(Value::as_str)
            .expect("error class")
            .to_string(),
        error
            .get("exit_code")
            .and_then(Value::as_i64)
            .expect("error exit_code"),
    )
}

/// The reference heaps: one single-threaded serial run per catalogue
/// kernel, same scale and seed the daemon requests will use.
fn reference_heaps() -> BTreeMap<String, String> {
    let session = Session::new();
    ss_npb::study_kernels()
        .into_iter()
        .map(|k| {
            let outcome = session
                .run(
                    &RunRequest::new(k.name, k.source)
                        .scale(SCALE)
                        .seed(SEED)
                        .mode(ExecutionMode::Serial),
                )
                .expect("reference run");
            (k.name.to_string(), heap_json(&outcome.heap))
        })
        .collect()
}

#[test]
fn soak_concurrent_clients_get_bit_identical_heaps_and_monotone_counters() {
    let (daemon, addr) = start_daemon(DaemonConfig {
        workers: 4,
        shards: 2,
        ..DaemonConfig::default()
    });
    let expected = reference_heaps();
    let kernels: Vec<String> = expected.keys().cloned().collect();

    // Prewarm: compile every program once so the concurrent phase can
    // assert exact cache counters (racing cold misses may each compile).
    {
        let mut client = Client::connect(&addr).expect("connect");
        for kernel in &kernels {
            parse_ok(
                &client
                    .call(&format!(r#"{{"op":"analyze","kernel":"{kernel}"}}"#))
                    .expect("analyze"),
            );
        }
    }

    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            let addr = &addr;
            let expected = &expected;
            let kernels = &kernels;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for kernel in kernels {
                    let line = format!(
                        r#"{{"op":"run","kernel":"{kernel}","threads":2,"scale":{SCALE},"seed":{SEED},"include_heap":true}}"#
                    );
                    let result = parse_ok(&client.call(&line).expect("run"));
                    assert_eq!(result.get("cache_hit").and_then(Value::as_bool), Some(true));
                    // The daemon's parallel heap must be bit-identical to
                    // the local single-threaded reference.
                    let heap = result.get("heap").expect("include_heap");
                    let rendered = render(heap);
                    assert_eq!(
                        &rendered, &expected[kernel],
                        "daemon heap diverged for {kernel}"
                    );
                }
            });
        }
    });

    // Compile-once per program per tenant: the prewarm produced exactly
    // one miss per kernel, the soak produced only hits.
    let stats = parse_ok(&server::request(&addr, r#"{"op":"stats"}"#).expect("stats"));
    let tenant = stats
        .get("tenants")
        .and_then(|t| t.get("default"))
        .expect("default tenant");
    assert_eq!(
        tenant.get("misses").and_then(Value::as_i64),
        Some(kernels.len() as i64)
    );
    assert_eq!(
        tenant.get("hits").and_then(Value::as_i64),
        Some((CLIENTS * kernels.len()) as i64)
    );
    assert_eq!(tenant.get("evictions").and_then(Value::as_i64), Some(0));
    assert!(tenant.get("bytes").and_then(Value::as_i64).unwrap() > 0);

    // No admission rejections at this load.
    let overloaded = stats
        .get("metrics")
        .and_then(|m| m.get("rejected"))
        .and_then(|r| r.get("overloaded"))
        .and_then(Value::as_i64);
    assert_eq!(overloaded, Some(0));

    let served = stats
        .get("metrics")
        .and_then(|m| m.get("endpoints"))
        .and_then(|e| e.get("run"))
        .expect("run endpoint stats");
    assert_eq!(
        served.get("count").and_then(Value::as_i64),
        Some((CLIENTS * kernels.len()) as i64)
    );
    assert!(served.get("p99_ms").and_then(Value::as_f64).unwrap() >= 0.0);

    drop(daemon); // drains + joins
}

/// Re-renders a parsed heap value back to the emitter's canonical form so
/// it can be compared against `heap_json` output byte for byte.
fn render(v: &Value) -> String {
    use ss_interp::json;
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9.0e18 {
                format!("{}", *n as i64)
            } else {
                json::number(*n)
            }
        }
        Value::Str(s) => json::string(s),
        Value::Arr(items) => json::array(items.iter().map(render)),
        Value::Obj(fields) => json::object(fields.iter().map(|(k, val)| (k.as_str(), render(val)))),
    }
}

#[test]
fn tenants_are_isolated_and_sharded_runs_agree() {
    let (_daemon, addr) = start_daemon(DaemonConfig {
        workers: 2,
        shards: 4,
        ..DaemonConfig::default()
    });
    let mut client = Client::connect(&addr).expect("connect");
    for tenant in ["alpha", "beta"] {
        let line = format!(
            r#"{{"op":"run","tenant":"{tenant}","kernel":"fig2_ua_transfer","threads":2,"scale":{SCALE},"seed":{SEED},"include_heap":true,"validate":true}}"#
        );
        let result = parse_ok(&client.call(&line).expect("run"));
        assert_eq!(
            result
                .get("validation")
                .and_then(|v| v.get("heaps_match"))
                .and_then(Value::as_bool),
            Some(true)
        );
    }
    let stats = parse_ok(&server::request(&addr, r#"{"op":"stats"}"#).expect("stats"));
    let tenants = stats.get("tenants").expect("tenants");
    for tenant in ["alpha", "beta"] {
        let t = tenants.get(tenant).expect("tenant entry");
        assert_eq!(t.get("misses").and_then(Value::as_i64), Some(1));
    }
}

#[test]
fn overloaded_is_returned_only_when_the_queue_bound_is_exceeded() {
    // One worker, queue depth one: a concurrent burst must overflow.
    let (_daemon, addr) = start_daemon(DaemonConfig {
        workers: 1,
        queue: 1,
        ..DaemonConfig::default()
    });

    // Sequential requests never see `overloaded`.
    let mut client = Client::connect(&addr).expect("connect");
    for _ in 0..5 {
        parse_ok(
            &client
                .call(r#"{"op":"run","kernel":"fig2_ua_transfer","threads":2,"scale":32}"#)
                .expect("run"),
        );
    }

    // Bursts of concurrent clients against the 1-deep queue: keep going
    // until admission control rejects at least one request (each burst of
    // 8 against worker+queue capacity 2 makes that effectively certain).
    let mut saw_overloaded = false;
    let mut saw_success = false;
    for _ in 0..20 {
        let outcomes: Vec<Option<String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let addr = &addr;
                    scope.spawn(move || {
                        server::request(
                            addr,
                            r#"{"op":"run","kernel":"fig3_cg_colidx","threads":2,"scale":512,"validate":true}"#,
                        )
                        .ok()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().ok().flatten())
                .collect()
        });
        for response in outcomes.into_iter().flatten() {
            let v = jsonin::parse(&response).expect("valid JSON");
            match v.get("ok").and_then(Value::as_bool) {
                Some(true) => saw_success = true,
                Some(false) => {
                    let (class, code) = parse_err(&response);
                    assert_eq!((class.as_str(), code), ("overloaded", 2));
                    saw_overloaded = true;
                }
                None => panic!("response without ok: {response}"),
            }
        }
        if saw_overloaded && saw_success {
            break;
        }
    }
    assert!(saw_overloaded, "queue bound was never exceeded");
    assert!(saw_success, "no request ever succeeded under burst load");

    let stats = parse_ok(&server::request(&addr, r#"{"op":"stats"}"#).expect("stats"));
    let rejected = stats
        .get("metrics")
        .and_then(|m| m.get("rejected"))
        .and_then(|r| r.get("overloaded"))
        .and_then(Value::as_i64)
        .unwrap();
    assert!(rejected > 0);
}

#[test]
fn malformed_lines_answer_structured_errors_and_keep_the_connection() {
    let (_daemon, addr) = start_daemon(DaemonConfig::default());
    let mut client = Client::connect(&addr).expect("connect");

    for (line, class) in [
        ("this is not json", "malformed"),
        (r#"{"op":"dance"}"#, "malformed"),
        (r#"{"op":"run"}"#, "malformed"),
        (r#"{"op":"run","kernel":"nope"}"#, "unknown_kernel"),
        (r#"{"op":"run","source":"x = ","name":"bad"}"#, "parse"),
        (
            r#"{"op":"run","source":"x = 1;","engine":"warp9"}"#,
            "unknown_engine",
        ),
    ] {
        let (got, _code) = parse_err(&client.call(line).expect("still connected"));
        assert_eq!(got, class, "for line {line}");
    }

    // The connection survived all of the above.
    parse_ok(&client.call(r#"{"op":"engines"}"#).expect("alive"));
}

#[test]
fn oversized_lines_are_rejected_and_the_connection_closed() {
    let (_daemon, addr) = start_daemon(DaemonConfig {
        max_line_bytes: 1024,
        ..DaemonConfig::default()
    });
    let mut client = Client::connect(&addr).expect("connect");
    let huge = format!(
        r#"{{"op":"run","name":"big","source":"{}"}}"#,
        "x = 1; ".repeat(1024)
    );
    let (class, code) = parse_err(&client.call(&huge).expect("error line before close"));
    assert_eq!((class.as_str(), code), ("oversized", 2));
    // The daemon closed the connection afterwards.
    assert!(client.call(r#"{"op":"engines"}"#).is_err());
}

#[test]
fn idle_connections_time_out_with_a_structured_error() {
    let (_daemon, addr) = start_daemon(DaemonConfig {
        idle_timeout: Duration::from_millis(300),
        ..DaemonConfig::default()
    });
    let mut client = Client::connect(&addr).expect("connect");
    // Send nothing; the daemon must answer with a timeout error and close.
    let started = std::time::Instant::now();
    let response = client.read_response();
    let (class, _code) = parse_err(&response.expect("timeout line"));
    assert_eq!(class, "timeout");
    assert!(started.elapsed() >= Duration::from_millis(250));
}

#[test]
fn dripping_bytes_without_a_newline_still_times_out() {
    // Slow-loris: a client feeding one byte per tick, never completing a
    // line.  The idle timeout bounds time-to-complete-a-line, so received
    // bytes alone must NOT keep the connection alive.
    use std::io::{Read, Write};
    let (_daemon, addr) = start_daemon(DaemonConfig {
        idle_timeout: Duration::from_millis(300),
        ..DaemonConfig::default()
    });
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let started = std::time::Instant::now();
    let drip = std::thread::spawn(move || {
        // Up to 5s of dripping; the server should cut us off long before.
        for _ in 0..200 {
            if writer.write_all(b"x").is_err() {
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    });
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("server writes the timeout error, then closes");
    let elapsed = started.elapsed();
    drip.join().unwrap();
    let (class, _code) = parse_err(response.trim());
    assert_eq!(class, "timeout");
    assert!(elapsed >= Duration::from_millis(250), "cut off too early");
    assert!(
        elapsed < Duration::from_secs(4),
        "dripped bytes kept the connection alive for {elapsed:?}"
    );
    // The rejection is accounted as a timeout.
    let stats = parse_ok(&server::request(&addr, r#"{"op":"stats"}"#).expect("stats"));
    let timeouts = stats
        .get("metrics")
        .and_then(|m| m.get("rejected"))
        .and_then(|r| r.get("timeouts"))
        .and_then(Value::as_i64)
        .unwrap();
    assert!(timeouts >= 1);
}

#[test]
fn shutdown_drains_gracefully_and_stops_accepting() {
    let (mut daemon, addr) = start_daemon(DaemonConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    parse_ok(
        &client
            .call(r#"{"op":"run","kernel":"fig2_ua_transfer","scale":32}"#)
            .expect("run"),
    );
    let ack = parse_ok(&client.call(r#"{"op":"shutdown"}"#).expect("shutdown"));
    assert_eq!(ack.get("draining").and_then(Value::as_bool), Some(true));
    assert!(daemon.is_draining());
    daemon.join(); // acceptor + workers exit; would hang forever on a leak

    // The listener is gone: new connections are refused (or reset).
    std::thread::sleep(Duration::from_millis(50));
    let refused = std::net::TcpStream::connect(&addr)
        .map(|mut s| {
            use std::io::{Read, Write};
            // Port may be in TIME_WAIT tricks on some kernels; a write or
            // read must fail promptly on a dead listener.
            let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
            let _ = s.write_all(b"{\"op\":\"engines\"}\n");
            let mut buf = [0u8; 16];
            matches!(s.read(&mut buf), Ok(0) | Err(_))
        })
        .unwrap_or(true);
    assert!(refused, "daemon kept serving after drain");
}
