//! Eligibility analysis for wavefront (level-set) execution of
//! serial-proven loops.
//!
//! A loop the dependence test proves *serial* is not necessarily a pure
//! recurrence: SpTRSV and Gauss-Seidel sweeps carry dependences only
//! along the sparsity structure, and run well as a sequence of parallel
//! wavefronts once a runtime inspection has grouped their iterations into
//! dependence level sets (`ss_inspector::levelset`).  That execution
//! strategy is sound only when the loop's *memory footprint* — which
//! addresses each iteration reads and writes — is a pure function of the
//! machine state at loop entry, so that
//!
//! 1. a serial inspection pass observes the same footprint the parallel
//!    executor will produce, and
//! 2. the resulting schedule can be cached under a key derived from the
//!    entry state (scalars plus the arrays feeding address computations).
//!
//! [`wavefront_fact`] checks exactly that, flow-insensitively:
//!
//! * let `W` be the arrays the loop body writes (the *watched* set the
//!   inspector shadows); a body-assigned scalar is **tainted** when it is
//!   (transitively) derived from a `W`-array value — computed as a
//!   fixpoint over the body's assignments, with compound assignments
//!   (`+=` …) counting the target itself as part of the right-hand side;
//! * every *address position* — array subscripts, `if`/`while`
//!   conditions, nested `for` headers — must mention no `W` array and no
//!   tainted scalar, so values produced by the loop can flow into other
//!   *values* but never into addresses or control flow;
//! * the loop itself must be a normalized counted `for` whose header
//!   mentions no body-assigned scalar and no `W` array (normalization
//!   alone does not guarantee bound invariance), whose body assigns
//!   neither its index variable nor any local declaration, and whose
//!   body-assigned scalars are all privatizable (the caller checks the
//!   dependence test reported no carried scalars).
//!
//! The returned [`WavefrontFact`] carries `W` (what the inspector must
//! shadow and record) and the *schedule arrays* — the arrays that feed
//! address positions, closed over scalar assignments — whose contents,
//! together with the entry scalars, key the cached schedule.

use ss_ir::ast::{AExpr, AssignOp, Program, Stmt};
use ss_ir::LoopId;
use std::collections::BTreeSet;

/// The facts a wavefront executor needs about an eligible loop.  Present
/// on a loop report exactly when the loop passed [`wavefront_fact`]'s
/// footprint-determinism gate (and the dependence test found no carried
/// scalars — checked by the analysis driver, not here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WavefrontFact {
    /// Arrays the loop body writes: the inspector shadows these during
    /// the inspection pass and records every access to them.
    pub watched: Vec<String>,
    /// Arrays feeding address positions (transitively through scalar
    /// assignments) plus the loop's own header: their contents at loop
    /// entry, with the entry scalars, determine the footprint and
    /// therefore key the schedule cache.  Disjoint from `watched` by
    /// construction.
    pub schedule_arrays: Vec<String>,
}

/// Walks `stmts` and every nested block, pre-order.  (The `ss_ir`
/// walkers elide the statement lifetime, so collecting references needs
/// this explicit-lifetime variant.)
fn for_each_stmt<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
    for s in stmts {
        f(s);
        for block in s.child_blocks() {
            for_each_stmt(block, f);
        }
    }
}

/// Walks `e` and every sub-expression, pre-order, with the expression
/// lifetime exposed.
fn for_each_expr<'a>(e: &'a AExpr, f: &mut impl FnMut(&'a AExpr)) {
    f(e);
    match e {
        AExpr::IntLit(_) | AExpr::Var(_) => {}
        AExpr::Index(_, idxs) => {
            for i in idxs {
                for_each_expr(i, f);
            }
        }
        AExpr::Binary(_, a, b) => {
            for_each_expr(a, f);
            for_each_expr(b, f);
        }
        AExpr::Unary(_, a) => for_each_expr(a, f),
    }
}

/// Collects every subscript expression inside `e` (each returned
/// expression may itself contain nested subscripts; callers check whole
/// expressions recursively).
fn collect_subscripts<'a>(e: &'a AExpr, out: &mut Vec<&'a AExpr>) {
    for_each_expr(e, &mut |x| {
        if let AExpr::Index(_, subs) = x {
            for s in subs {
                // The walk already descends into `s`; pushing the whole
                // subscript is enough because checks are recursive.
                out.push(s);
            }
        }
    });
}

/// The *address positions* of a loop body: every expression whose value
/// selects which memory the loop touches or which statements execute —
/// array subscripts (read and write side), branch and `while` conditions,
/// and nested `for` headers.
fn address_positions(body: &[Stmt]) -> Vec<&AExpr> {
    let mut out = Vec::new();
    for_each_stmt(body, &mut |s| match s {
        Stmt::Assign { target, value, .. } => {
            for idx in &target.indices {
                out.push(idx);
            }
            collect_subscripts(value, &mut out);
        }
        Stmt::If { cond, .. } | Stmt::While { cond, .. } => out.push(cond),
        Stmt::For {
            init, bound, step, ..
        } => {
            out.push(init);
            out.push(bound);
            out.push(step);
        }
        Stmt::Decl { init, dims, .. } => {
            for d in dims {
                out.push(d);
            }
            if let Some(e) = init {
                collect_subscripts(e, &mut out);
            }
        }
    });
    out
}

fn mentions_any(e: &AExpr, arrays: &BTreeSet<String>, scalars: &BTreeSet<String>) -> bool {
    e.arrays().iter().any(|a| arrays.contains(a))
        || e.variables().iter().any(|v| scalars.contains(v))
}

/// Decides wavefront eligibility for loop `id` of `program` and, when
/// eligible, returns the watched and schedule arrays.  See the module
/// docs for the exact conditions; the caller is responsible for the
/// dependence-level preconditions (loop proven serial, no reductions, no
/// carried scalars, normalized counted `for`).
pub fn wavefront_fact(program: &Program, id: LoopId) -> Option<WavefrontFact> {
    let Some(Stmt::For {
        var,
        init,
        bound,
        step,
        body,
        ..
    }) = program.find_loop(id)
    else {
        return None;
    };

    // Written arrays (W), body-assigned scalars, and structural vetoes.
    let mut watched: BTreeSet<String> = BTreeSet::new();
    let mut assigned: BTreeSet<String> = BTreeSet::new();
    let mut has_decl = false;
    for_each_stmt(body, &mut |s| match s {
        Stmt::Assign { target, .. } => {
            if target.is_scalar() {
                assigned.insert(target.name.clone());
            } else {
                watched.insert(target.name.clone());
            }
        }
        Stmt::For { var, .. } => {
            assigned.insert(var.clone());
        }
        Stmt::Decl { .. } => has_decl = true,
        Stmt::If { .. } | Stmt::While { .. } => {}
    });
    if has_decl || watched.is_empty() || assigned.contains(var) {
        return None;
    }

    // Taint fixpoint: scalars (transitively) derived from a watched-array
    // value.  Compound assignments read their target.
    let mut tainted: BTreeSet<String> = BTreeSet::new();
    loop {
        let before = tainted.len();
        for_each_stmt(body, &mut |s| match s {
            Stmt::Assign { target, op, value } if target.is_scalar() => {
                let self_read = !matches!(op, AssignOp::Assign) && tainted.contains(&target.name);
                if self_read || mentions_any(value, &watched, &tainted) {
                    tainted.insert(target.name.clone());
                }
            }
            Stmt::For {
                var,
                init,
                bound,
                step,
                ..
            } if [init, bound, step]
                .iter()
                .any(|e| mentions_any(e, &watched, &tainted)) =>
            {
                tainted.insert(var.clone());
            }
            _ => {}
        });
        if tainted.len() == before {
            break;
        }
    }

    // Address positions must be clean of watched arrays and tainted
    // scalars: the footprint then depends only on loop-entry state.
    let addrs = address_positions(body);
    if addrs.iter().any(|e| mentions_any(e, &watched, &tainted)) {
        return None;
    }

    // The loop's own header must be invariant: no body-assigned scalar,
    // no watched array (`is_normalized` does not guarantee this).
    if [init, bound, step]
        .iter()
        .any(|e| mentions_any(e, &watched, &assigned))
    {
        return None;
    }

    // Schedule arrays: arrays in address positions and in the header,
    // closed over the scalar assignments that feed address scalars.
    let mut schedule_arrays: BTreeSet<String> = BTreeSet::new();
    let mut addr_scalars: BTreeSet<String> = BTreeSet::new();
    for e in addrs.iter().copied().chain([init, bound, step]) {
        schedule_arrays.extend(e.arrays());
        addr_scalars.extend(e.variables());
    }
    loop {
        let before = (schedule_arrays.len(), addr_scalars.len());
        for_each_stmt(body, &mut |s| match s {
            Stmt::Assign { target, value, .. }
                if target.is_scalar() && addr_scalars.contains(&target.name) =>
            {
                schedule_arrays.extend(value.arrays());
                addr_scalars.extend(value.variables());
            }
            Stmt::For {
                var,
                init,
                bound,
                step,
                ..
            } if addr_scalars.contains(var) => {
                for e in [init, bound, step] {
                    schedule_arrays.extend(e.arrays());
                    addr_scalars.extend(e.variables());
                }
            }
            _ => {}
        });
        if (schedule_arrays.len(), addr_scalars.len()) == before {
            break;
        }
    }

    Some(WavefrontFact {
        watched: watched.into_iter().collect(),
        schedule_arrays: schedule_arrays.into_iter().collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_ir::parse_program;

    fn fact(src: &str, loop_id: u32) -> Option<WavefrontFact> {
        let program = parse_program("wavefront-test", src).expect("test source parses");
        wavefront_fact(&program, LoopId(loop_id))
    }

    #[test]
    fn sptrsv_shape_is_eligible_with_the_solution_vector_watched() {
        // The textbook sparse triangular solve: `x` is read through
        // `col[j]` (value position) and written at `x[i]`; all addresses
        // come from `rowptr`/`cnt`/`col` and untainted scalars.
        let f = fact(
            r#"
            for (i = 0; i < n; i++) {
                sum = b[i];
                for (j = rowptr[i]; j < rowptr[i] + cnt[i]; j++) {
                    sum -= val[j] * x[col[j]];
                }
                x[i] = sum / diag[i];
            }
            "#,
            0,
        )
        .expect("sptrsv is wavefront-eligible");
        assert_eq!(f.watched, vec!["x"]);
        assert_eq!(f.schedule_arrays, vec!["cnt", "col", "rowptr"]);
    }

    #[test]
    fn histogram_scatter_is_eligible_for_waw_ordering() {
        let f = fact("for (i = 0; i < n; i++) { h[idx[i]] = i; }", 0)
            .expect("scatter with clean index array is eligible");
        assert_eq!(f.watched, vec!["h"]);
        assert_eq!(f.schedule_arrays, vec!["idx"]);
    }

    #[test]
    fn written_arrays_must_stay_out_of_address_positions() {
        // `b` is written and read as a subscript: the footprint depends
        // on mid-loop values, so inspection cannot be trusted.
        assert!(fact(
            "for (i = 0; i < n; i++) { a[b[i]] = i; b[i + 1] = b[i] + 1; }",
            0
        )
        .is_none());
    }

    #[test]
    fn tainted_scalars_must_stay_out_of_address_positions() {
        // `t` is derived from the written array `x`, then used as an
        // index — ineligible.
        assert!(fact("for (i = 0; i < n; i++) { t = x[i]; x[a[t]] = i; }", 0).is_none());
        // Compound assignment taints through the accumulator.
        assert!(fact("for (i = 0; i < n; i++) { t = 0; t += x[i]; x[t] = i; }", 0).is_none());
    }

    #[test]
    fn control_flow_on_written_values_is_ineligible() {
        // Which branch runs depends on the evolving `x` — footprint is
        // not a function of entry state.
        assert!(fact(
            "for (i = 1; i < n; i++) { if (x[i - 1] > 0) { x[i] = 1; } }",
            0
        )
        .is_none());
    }

    #[test]
    fn loops_writing_their_own_bound_or_index_are_ineligible() {
        assert!(fact("for (i = 0; i < n; i++) { x[i] = 1; n = n - 1; }", 0).is_none());
        assert!(fact("for (i = 0; i < n; i++) { x[i] = 1; i = i + 1; }", 0).is_none());
    }

    #[test]
    fn local_declarations_in_the_body_are_ineligible() {
        assert!(fact(
            "for (i = 0; i < n; i++) { int t[4]; t[0] = i; x[i] = t[0]; }",
            0
        )
        .is_none());
    }

    #[test]
    fn value_only_use_of_written_arrays_is_allowed() {
        // Gauss-Seidel-style sweep: `x` feeds values, never addresses.
        let f = fact(
            r#"
            for (i = 0; i < n; i++) {
                acc = b[i];
                for (j = ptr[i]; j < ptr[i + 1]; j++) {
                    acc -= val[j] * x[col[j]];
                }
                x[i] = acc;
            }
            "#,
            0,
        )
        .expect("gauss-seidel sweep is eligible");
        assert_eq!(f.watched, vec!["x"]);
        assert_eq!(f.schedule_arrays, vec!["col", "ptr"]);
    }
}
