//! The Figure 1 style study: for every catalogued benchmark kernel, does the
//! analysis derive the enabling property and parallelize the target loop,
//! and what would a conventional compiler conclude?

use crate::pipeline::{parallelize_source, ParallelizationReport};
use ss_ir::LoopId;

/// One row of the study table.
#[derive(Debug, Clone)]
pub struct StudyRow {
    /// Kernel name.
    pub kernel: String,
    /// Originating program/benchmark.
    pub program: String,
    /// Suite (NPB / SuiteSparse / paper).
    pub suite: String,
    /// Property class per Section 2 of the paper.
    pub pattern: String,
    /// Did the extended analysis parallelize the target loop?
    pub detected: bool,
    /// Was the loop left serial but marked wavefront-schedulable, so the
    /// runtime level-set tier recovers it?  Mutually exclusive with
    /// `detected`.
    pub wavefront: bool,
    /// Did the baseline (no properties) parallelize it?
    pub baseline_detected: bool,
    /// The reasons reported for the target loop.
    pub reasons: Vec<String>,
}

/// The whole study table.
#[derive(Debug, Clone, Default)]
pub struct StudyTable {
    /// Rows in catalogue order.
    pub rows: Vec<StudyRow>,
}

impl StudyTable {
    /// Number of kernels whose target loop the extended analysis
    /// parallelizes.
    pub fn detected_count(&self) -> usize {
        self.rows.iter().filter(|r| r.detected).count()
    }

    /// Number of kernels the baseline parallelizes.
    pub fn baseline_count(&self) -> usize {
        self.rows.iter().filter(|r| r.baseline_detected).count()
    }

    /// Number of kernels whose target loop stays serial at compile time
    /// but is recovered by the runtime wavefront scheduler.
    pub fn wavefront_count(&self) -> usize {
        self.rows.iter().filter(|r| r.wavefront).count()
    }

    /// Renders the table as aligned text (the Figure 1 reproduction).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:<26} {:<12} {:<30} {:>9} {:>9}\n",
            "kernel", "program", "suite", "pattern", "extended", "baseline"
        ));
        out.push_str(&"-".repeat(116));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!(
                "{:<24} {:<26} {:<12} {:<30} {:>9} {:>9}\n",
                r.kernel,
                r.program,
                r.suite,
                r.pattern,
                if r.detected {
                    "parallel"
                } else if r.wavefront {
                    "wavefront"
                } else {
                    "serial"
                },
                if r.baseline_detected {
                    "parallel"
                } else {
                    "serial"
                },
            ));
        }
        out.push_str(&format!(
            "\nparallelized by the extended analysis: {}/{}   by the baseline: {}/{}\n",
            self.detected_count(),
            self.rows.len(),
            self.baseline_count(),
            self.rows.len()
        ));
        if self.wavefront_count() > 0 {
            out.push_str(&format!(
                "recovered at run time by wavefront scheduling: {}/{}\n",
                self.wavefront_count(),
                self.rows.len()
            ));
        }
        out
    }
}

/// A study kernel description, decoupled from `ss-npb` so the study can also
/// run on user-provided kernels.
#[derive(Debug, Clone)]
pub struct StudyInput {
    /// Kernel name.
    pub name: String,
    /// Program of origin.
    pub program: String,
    /// Suite of origin.
    pub suite: String,
    /// Pattern class label.
    pub pattern: String,
    /// Mini-C source.
    pub source: String,
    /// Loop id that the paper parallelizes.
    pub target_loop: u32,
}

/// Runs the study over a set of kernels.
pub fn run_study(kernels: &[StudyInput]) -> StudyTable {
    let mut table = StudyTable::default();
    for k in kernels {
        let report: ParallelizationReport = match parallelize_source(&k.name, &k.source) {
            Ok(r) => r,
            Err(e) => {
                table.rows.push(StudyRow {
                    kernel: k.name.clone(),
                    program: k.program.clone(),
                    suite: k.suite.clone(),
                    pattern: k.pattern.clone(),
                    detected: false,
                    wavefront: false,
                    baseline_detected: false,
                    reasons: vec![format!("parse error: {e}")],
                });
                continue;
            }
        };
        let target = report.loop_report(LoopId(k.target_loop));
        table.rows.push(StudyRow {
            kernel: k.name.clone(),
            program: k.program.clone(),
            suite: k.suite.clone(),
            pattern: k.pattern.clone(),
            detected: target.map(|l| l.is_parallelizable()).unwrap_or(false),
            wavefront: target.map(|l| l.wavefront.is_some()).unwrap_or(false),
            baseline_detected: target.map(|l| l.baseline_parallel).unwrap_or(false),
            reasons: target.map(|l| l.reasons.clone()).unwrap_or_default(),
        });
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_inputs() -> Vec<StudyInput> {
        vec![
            StudyInput {
                name: "fig2".into(),
                program: "UA".into(),
                suite: "NPB".into(),
                pattern: "injectivity".into(),
                source: r#"
                    for (e = 0; e < nelt; e++) { mt_to_id[e] = e; }
                    for (miel = 0; miel < nelt; miel++) {
                        iel = mt_to_id[miel];
                        id_to_mt[iel] = miel;
                    }
                "#
                .into(),
                target_loop: 1,
            },
            StudyInput {
                name: "unprovable".into(),
                program: "synthetic".into(),
                suite: "none".into(),
                pattern: "none".into(),
                source: "for (i = 0; i < n; i++) { hist[idx[i]] = i; }".into(),
                target_loop: 0,
            },
        ]
    }

    #[test]
    fn study_distinguishes_detected_and_undetected_kernels() {
        let table = run_study(&sample_inputs());
        assert_eq!(table.rows.len(), 2);
        assert!(table.rows[0].detected);
        assert!(!table.rows[0].baseline_detected);
        assert!(!table.rows[0].wavefront);
        // The histogram stays serial at compile time, but its footprint is
        // entry-determined so the runtime wavefront tier can schedule it.
        assert!(!table.rows[1].detected);
        assert!(table.rows[1].wavefront);
        assert_eq!(table.detected_count(), 1);
        assert_eq!(table.baseline_count(), 0);
        assert_eq!(table.wavefront_count(), 1);
        let txt = table.render();
        assert!(txt.contains("fig2"));
        assert!(txt.contains("wavefront"));
        assert!(txt.contains("parallelized by the extended analysis: 1/2"));
        assert!(txt.contains("recovered at run time by wavefront scheduling: 1/2"));
    }

    #[test]
    fn parse_errors_become_serial_rows() {
        let table = run_study(&[StudyInput {
            name: "broken".into(),
            program: "x".into(),
            suite: "x".into(),
            pattern: "x".into(),
            source: "for (i = 0 i < n; i++) {}".into(),
            target_loop: 0,
        }]);
        assert!(!table.rows[0].detected);
        assert!(table.rows[0].reasons[0].contains("parse error"));
    }
}
