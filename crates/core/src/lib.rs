//! # ss-parallelizer — the automatic parallelizer for subscripted subscripts
//!
//! The paper's primary contribution as a library: feed it a (mini-C) program
//! and it
//!
//! 1. runs the Phase 1 / Phase 2 aggregation of Section 3 to derive
//!    index-array properties from the code that fills the index arrays,
//! 2. runs the extended Range Test of Section 5 on every loop,
//! 3. reports which loops are parallel, why, and what a conventional
//!    compiler (the baseline) would have concluded,
//! 4. emits the transformed source with `#pragma omp parallel for`
//!    annotations on the loops it proved parallel.
//!
//! ```
//! use ss_parallelizer::parallelize_source;
//!
//! let report = parallelize_source("fig2", r#"
//!     for (e = 0; e < nelt; e++) { mt_to_id[e] = e; }
//!     for (miel = 0; miel < nelt; miel++) {
//!         iel = mt_to_id[miel];
//!         id_to_mt[iel] = miel;
//!     }
//! "#).unwrap();
//! assert!(report.loop_report(ss_ir::LoopId(1)).unwrap().parallel);
//! assert!(report.annotated_source.contains("#pragma omp parallel for"));
//! ```

pub mod pipeline;
pub mod reduction;
pub mod study;
pub mod wavefront;

pub use pipeline::{
    parallelize, parallelize_source, Artifacts, EngineArtifact, ExtArtifacts, LoopReport,
    ParallelizationReport, StageTiming, VerdictKind,
};
pub use reduction::{recognize_reductions, ReductionInfo, ReductionOp};
pub use study::{run_study, StudyInput, StudyRow, StudyTable};
pub use wavefront::{wavefront_fact, WavefrontFact};
