//! Reduction recognition: turning carried scalar dependences into parallel
//! verdicts.
//!
//! A loop like `for (k = 0; k < n; k++) { total += value[k]; }` fails the
//! privatization test — `total` is read before written in every iteration —
//! yet it is parallelizable with per-thread partial accumulators merged by
//! the operator.  This pass recognizes the accumulation shapes the executor
//! can dispatch *exactly* (integer `+`/`-`/`*` wrap — wrapping addition and
//! multiplication are associative and commutative — and `min`/`max` are
//! idempotent, so any partition of the iteration space reproduces the
//! serial result bit for bit):
//!
//! * **sum** — `acc += e`, `acc -= e`, `acc = acc + e`, `acc = e + acc`,
//!   `acc = acc - e`;
//! * **product** — `acc *= e`, `acc = acc * e`, `acc = e * acc`
//!   (identity 1);
//! * **min** — `if (e < acc) { acc = e; }` (any of the four orientations of
//!   the comparison, strict or not);
//! * **max** — the mirror image.
//!
//! A scalar qualifies only when **every** mention of it in the loop body is
//! one of these update statements (all of the same operator) and the term
//! `e` never reads the accumulator — any other read or write would make the
//! intermediate value observable and the combiner merge unsound.  The
//! loop's own bound/step must not read the accumulator either (dispatch
//! evaluates them once, up front).

use ss_ir::ast::{AExpr, AssignOp, BinOp, LoopId, Program, Stmt};
use ss_ir::slots::{ScalarSlot, SlotMap};

/// The combiner of a recognized reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReductionOp {
    /// Sum (covers `+=` and `-=`: wrapping addition commutes either way).
    Add,
    /// Product (`*=`; identity 1 — wrapping multiplication is associative
    /// and commutative, so partial products merge exactly).
    Mul,
    /// Minimum (guarded compare-and-assign).
    Min,
    /// Maximum (guarded compare-and-assign).
    Max,
}

impl ReductionOp {
    /// The identity element partial accumulators start from.
    pub fn identity(self) -> i64 {
        match self {
            ReductionOp::Add => 0,
            ReductionOp::Mul => 1,
            ReductionOp::Min => i64::MAX,
            ReductionOp::Max => i64::MIN,
        }
    }

    /// Merges two partial results.
    pub fn combine(self, a: i64, b: i64) -> i64 {
        match self {
            ReductionOp::Add => a.wrapping_add(b),
            ReductionOp::Mul => a.wrapping_mul(b),
            ReductionOp::Min => a.min(b),
            ReductionOp::Max => a.max(b),
        }
    }

    /// OpenMP-style clause symbol (`+`, `*`, `min`, `max`).
    pub fn symbol(self) -> &'static str {
        match self {
            ReductionOp::Add => "+",
            ReductionOp::Mul => "*",
            ReductionOp::Min => "min",
            ReductionOp::Max => "max",
        }
    }
}

/// One recognized reduction accumulator of a loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReductionInfo {
    /// The accumulator's slot in the program's [`SlotMap`] (what the
    /// compiled executor indexes its dense frame with).
    pub slot: ScalarSlot,
    /// The accumulator's name (for reports and the AST reference engine).
    pub var: String,
    /// The combiner.
    pub op: ReductionOp,
}

/// Recognizes the reduction accumulators of a `for` loop.  Returns one
/// [`ReductionInfo`] per scalar whose every mention in the body is a
/// well-formed update of a single operator; scalars that fail the shape
/// test are simply absent (the caller decides whether the remaining
/// blockers still forbid parallel execution).
pub fn recognize_reductions(program: &Program, id: LoopId, slots: &SlotMap) -> Vec<ReductionInfo> {
    let Some(Stmt::For {
        var,
        init,
        bound,
        step,
        body,
        ..
    }) = program.find_loop(id)
    else {
        return Vec::new();
    };
    let mut accumulators = Vec::new();
    for name in assigned_scalars(body) {
        if name == *var {
            continue;
        }
        // Dispatch evaluates the loop header once; an accumulator feeding
        // its own loop's bound would change the trip count mid-loop.
        if expr_mentions(init, &name) || expr_mentions(bound, &name) || expr_mentions(step, &name) {
            continue;
        }
        if let Some(op) = classify(body, &name) {
            let Some(slot) = slots.scalar_slot(&name) else {
                continue;
            };
            accumulators.push(ReductionInfo {
                slot,
                var: name,
                op,
            });
        }
    }
    accumulators
}

/// All scalars assigned anywhere in the statement list (including inner
/// loop index variables and declarations).
fn assigned_scalars(stmts: &[Stmt]) -> Vec<String> {
    let mut out = Vec::new();
    fn walk(stmts: &[Stmt], out: &mut Vec<String>) {
        for s in stmts {
            match s {
                Stmt::Assign { target, .. }
                    if target.is_scalar() && !out.contains(&target.name) =>
                {
                    out.push(target.name.clone());
                }
                Stmt::Decl { name, dims, .. } if dims.is_empty() && !out.contains(name) => {
                    out.push(name.clone());
                }
                Stmt::For { var, .. } if !out.contains(var) => {
                    out.push(var.clone());
                }
                _ => {}
            }
            for block in s.child_blocks() {
                walk(block, out);
            }
        }
    }
    walk(stmts, &mut out);
    out
}

fn expr_mentions(e: &AExpr, name: &str) -> bool {
    let mut found = false;
    e.for_each(&mut |x| {
        if matches!(x, AExpr::Var(v) if v == name) {
            found = true;
        }
    });
    found
}

fn is_var(e: &AExpr, name: &str) -> bool {
    matches!(e, AExpr::Var(v) if v == name)
}

/// Classifies `acc` over the whole body: `Some(op)` iff every statement
/// mentioning `acc` is an update of that operator, and at least one update
/// exists.
fn classify(body: &[Stmt], acc: &str) -> Option<ReductionOp> {
    let mut op: Option<ReductionOp> = None;
    let mut updates = 0usize;
    if !scan(body, acc, &mut op, &mut updates) {
        return None;
    }
    if updates == 0 {
        return None;
    }
    op
}

fn scan(stmts: &[Stmt], acc: &str, op: &mut Option<ReductionOp>, updates: &mut usize) -> bool {
    for s in stmts {
        if let Some(kind) = match_update(s, acc) {
            match *op {
                None => *op = Some(kind),
                Some(existing) if existing == kind => {}
                Some(_) => return false,
            }
            *updates += 1;
            continue;
        }
        // Not an update: the statement must not touch `acc` at all.
        match s {
            Stmt::Decl { name, dims, init } => {
                if name == acc && dims.is_empty() {
                    return false;
                }
                if dims.iter().any(|d| expr_mentions(d, acc)) {
                    return false;
                }
                if init.as_ref().is_some_and(|e| expr_mentions(e, acc)) {
                    return false;
                }
            }
            Stmt::Assign { target, value, .. } => {
                if target.is_scalar() && target.name == acc {
                    return false;
                }
                if expr_mentions(value, acc) || target.indices.iter().any(|i| expr_mentions(i, acc))
                {
                    return false;
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if expr_mentions(cond, acc) {
                    return false;
                }
                if !scan(then_branch, acc, op, updates) || !scan(else_branch, acc, op, updates) {
                    return false;
                }
            }
            Stmt::For {
                var,
                init,
                bound,
                step,
                body,
                ..
            } => {
                if var == acc
                    || expr_mentions(init, acc)
                    || expr_mentions(bound, acc)
                    || expr_mentions(step, acc)
                {
                    return false;
                }
                if !scan(body, acc, op, updates) {
                    return false;
                }
            }
            Stmt::While { cond, body, .. } => {
                if expr_mentions(cond, acc) {
                    return false;
                }
                if !scan(body, acc, op, updates) {
                    return false;
                }
            }
        }
    }
    true
}

/// Matches one statement as a reduction update of `acc`.
fn match_update(s: &Stmt, acc: &str) -> Option<ReductionOp> {
    match s {
        // acc += e / acc -= e / acc *= e / acc = acc + e / acc = e + acc /
        // acc = acc - e / acc = acc * e / acc = e * acc
        Stmt::Assign { target, op, value } if target.is_scalar() && target.name == acc => {
            match op {
                AssignOp::AddAssign | AssignOp::SubAssign => {
                    (!expr_mentions(value, acc)).then_some(ReductionOp::Add)
                }
                AssignOp::MulAssign => (!expr_mentions(value, acc)).then_some(ReductionOp::Mul),
                AssignOp::Assign => {
                    let AExpr::Binary(bop, a, b) = value else {
                        return None;
                    };
                    match bop {
                        BinOp::Add => ((is_var(a, acc) && !expr_mentions(b, acc))
                            || (is_var(b, acc) && !expr_mentions(a, acc)))
                        .then_some(ReductionOp::Add),
                        BinOp::Sub if is_var(a, acc) && !expr_mentions(b, acc) => {
                            Some(ReductionOp::Add)
                        }
                        BinOp::Mul => ((is_var(a, acc) && !expr_mentions(b, acc))
                            || (is_var(b, acc) && !expr_mentions(a, acc)))
                        .then_some(ReductionOp::Mul),
                        _ => None,
                    }
                }
            }
        }
        // if (e REL acc) { acc = e; }   — min/max update
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } if else_branch.is_empty() && then_branch.len() == 1 => {
            let Stmt::Assign {
                target,
                op: AssignOp::Assign,
                value,
            } = &then_branch[0]
            else {
                return None;
            };
            if !target.is_scalar() || target.name != acc || expr_mentions(value, acc) {
                return None;
            }
            let AExpr::Binary(rel, a, b) = cond else {
                return None;
            };
            // `value REL acc` orientation…
            if **a == *value && is_var(b, acc) {
                return match rel {
                    BinOp::Lt | BinOp::Le => Some(ReductionOp::Min),
                    BinOp::Gt | BinOp::Ge => Some(ReductionOp::Max),
                    _ => None,
                };
            }
            // …or `acc REL value`.
            if is_var(a, acc) && **b == *value {
                return match rel {
                    BinOp::Gt | BinOp::Ge => Some(ReductionOp::Min),
                    BinOp::Lt | BinOp::Le => Some(ReductionOp::Max),
                    _ => None,
                };
            }
            None
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_ir::parse_program;

    fn recognize(src: &str, loop_id: u32) -> Vec<ReductionInfo> {
        let p = parse_program("t", src).unwrap();
        let slots = SlotMap::build(&p);
        recognize_reductions(&p, LoopId(loop_id), &slots)
    }

    #[test]
    fn sum_forms_are_recognized() {
        for src in [
            "total = 0; for (k = 0; k < n; k++) { total += a[k]; }",
            "total = 0; for (k = 0; k < n; k++) { total = total + a[k]; }",
            "total = 0; for (k = 0; k < n; k++) { total = a[k] + total; }",
            "total = 0; for (k = 0; k < n; k++) { total = total - a[k]; }",
            "total = 0; for (k = 0; k < n; k++) { total -= a[k]; }",
        ] {
            let r = recognize(src, 0);
            assert_eq!(r.len(), 1, "{src}");
            assert_eq!(r[0].var, "total");
            assert_eq!(r[0].op, ReductionOp::Add);
        }
    }

    #[test]
    fn product_forms_are_recognized() {
        for src in [
            "prod = 1; for (k = 0; k < n; k++) { prod *= a[k]; }",
            "prod = 1; for (k = 0; k < n; k++) { prod = prod * a[k]; }",
            "prod = 1; for (k = 0; k < n; k++) { prod = a[k] * prod; }",
        ] {
            let r = recognize(src, 0);
            assert_eq!(r.len(), 1, "{src}");
            assert_eq!(r[0].var, "prod");
            assert_eq!(r[0].op, ReductionOp::Mul);
        }
        // The term must not read the accumulator.
        assert!(recognize("for (k = 0; k < n; k++) { x = x * x; }", 0).is_empty());
        assert!(recognize("for (k = 0; k < n; k++) { x *= x + 1; }", 0).is_empty());
    }

    #[test]
    fn min_and_max_updates_are_recognized() {
        let r = recognize(
            "for (k = 0; k < n; k++) { if (a[k] < best) { best = a[k]; } }",
            0,
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].op, ReductionOp::Min);
        let r = recognize(
            "for (k = 0; k < n; k++) { if (best < a[k]) { best = a[k]; } }",
            0,
        );
        assert_eq!(r[0].op, ReductionOp::Max);
        let r = recognize(
            "for (k = 0; k < n; k++) { if (a[k] >= hi) { hi = a[k]; } }",
            0,
        );
        assert_eq!(r[0].op, ReductionOp::Max);
    }

    #[test]
    fn non_reductions_are_rejected() {
        // The accumulator is read outside its update.
        assert!(recognize(
            "for (k = 0; k < n; k++) { total += a[k]; out[k] = total; }",
            0
        )
        .is_empty());
        // Mixed operators.
        assert!(recognize(
            "for (k = 0; k < n; k++) { x += a[k]; if (a[k] < x) { x = a[k]; } }",
            0
        )
        .is_empty());
        assert!(recognize("for (k = 0; k < n; k++) { x *= a[k]; x += 1; }", 0).is_empty());
        // The term reads the accumulator.
        assert!(recognize("for (k = 0; k < n; k++) { x = x + x; }", 0).is_empty());
        // Plain overwrite: privatizable, not a reduction.
        assert!(recognize("for (k = 0; k < n; k++) { x = a[k]; }", 0).is_empty());
        // Histogram: the compound update targets an array element, never a
        // scalar accumulator.
        assert!(recognize("for (i = 0; i < n; i++) { hist[a[i]] += 1; }", 0).is_empty());
        // Accumulator in the loop bound.
        assert!(recognize("for (k = 0; k < x; k++) { x += a[k]; }", 0).is_empty());
    }

    #[test]
    fn nested_updates_and_multiple_accumulators() {
        let src = r#"
            total = 0;
            cnt = 0;
            for (i = 0; i < n; i++) {
                for (k = r[i]; k < r[i+1]; k++) {
                    total += v[k];
                    cnt += 1;
                }
            }
        "#;
        let r = recognize(src, 0);
        assert_eq!(r.len(), 2);
        assert!(r.iter().all(|x| x.op == ReductionOp::Add));
        let names: Vec<&str> = r.iter().map(|x| x.var.as_str()).collect();
        assert!(names.contains(&"total") && names.contains(&"cnt"));
        // The inner loop sees the same accumulators.
        let r = recognize(src, 1);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn identities_and_combiners() {
        assert_eq!(ReductionOp::Add.identity(), 0);
        assert_eq!(ReductionOp::Add.combine(3, -5), -2);
        assert_eq!(ReductionOp::Mul.identity(), 1);
        assert_eq!(ReductionOp::Mul.combine(3, -5), -15);
        assert_eq!(
            ReductionOp::Mul.combine(i64::MAX, 2),
            i64::MAX.wrapping_mul(2),
            "partial products wrap exactly like the serial accumulation"
        );
        assert_eq!(ReductionOp::Mul.symbol(), "*");
        assert_eq!(ReductionOp::Min.combine(ReductionOp::Min.identity(), 7), 7);
        assert_eq!(
            ReductionOp::Max.combine(ReductionOp::Max.identity(), -7),
            -7
        );
        assert_eq!(ReductionOp::Add.symbol(), "+");
        assert_eq!(ReductionOp::Min.symbol(), "min");
        assert_eq!(ReductionOp::Max.symbol(), "max");
    }
}
