//! The staged compilation pipeline: parse → analyze → slots → bytecode →
//! opt, with every stage's output carried in one typed [`Artifacts`] store.
//!
//! The first half of this module is the *analysis* pipeline (aggregate →
//! dependence-test → annotate, producing a [`ParallelizationReport`]); the
//! second half is the [`Artifacts`] store that runs the analysis **and**
//! both compilation passes exactly once and hands every downstream
//! consumer — all execution engines, the CLI, the benches, the fuzz
//! harness — the same compiled products.  Engines never compile
//! independently: the compile-once counters of `ss_ir::slots` and
//! `ss_ir::bytecode` are pipeline invariants, asserted in
//! `crates/interp/tests/compile_once.rs`.

use crate::reduction::{recognize_reductions, ReductionInfo};
use ss_aggregation::{analyze_program, ProgramAnalysis};
use ss_deptest::{test_loop, LoopVerdict, RangeTestConfig};
use ss_ir::bytecode::{compile_bytecode, BytecodeProgram};
use ss_ir::loops::LoopTree;
use ss_ir::opt::{optimize, OptLevel};
use ss_ir::slots::{compile_program as compile_slots, CompiledProgram, SlotMap};
use ss_ir::{parse_program, print_program_with, IrError, LoopId, PrintOptions, Program};
use ss_properties::PropertyDatabase;
use std::time::Instant;

/// The result for one loop: both the extended verdict and the baseline one.
#[derive(Debug, Clone)]
pub struct LoopReport {
    /// The loop.
    pub loop_id: LoopId,
    /// Loop index variable (empty for `while` loops).
    pub index_var: String,
    /// Nesting depth (0 = outermost).
    pub depth: usize,
    /// Id of the directly enclosing loop, if any.
    pub parent: Option<LoopId>,
    /// Whether the loop contains a subscripted-subscript access.
    pub has_subscripted_subscript: bool,
    /// Whether the source carried a manual `omp parallel` pragma (the oracle
    /// used in the Figure 1 study).
    pub manually_parallel: bool,
    /// Verdict of the extended Range Test (with index-array properties).
    pub parallel: bool,
    /// Verdict of the baseline test (no index-array properties) — what
    /// conventional compilers conclude.
    pub baseline_parallel: bool,
    /// Why the loop is parallel (empty when serial).
    pub reasons: Vec<String>,
    /// What blocked parallelization (empty when parallel).
    pub blockers: Vec<String>,
    /// Recognized reduction accumulators.  Non-empty exactly when the loop
    /// is parallelizable *as a reduction*: every dependence blocker was a
    /// carried scalar, and every carried scalar is a well-formed
    /// accumulator (`+`, `min` or `max`).  Such loops have
    /// `parallel == false` (they are not independence-parallel) but are
    /// dispatched by executors with per-thread partials and a combiner.
    pub reductions: Vec<ReductionInfo>,
    /// Present when the loop is serial (array-carried dependence, no
    /// carried scalars) but its memory footprint is provably a function
    /// of loop-entry state, so a wavefront engine may inspect it once
    /// and execute it as dependence level sets (see
    /// [`crate::wavefront::wavefront_fact`]).  Does **not** make the
    /// loop [`is_parallelizable`](Self::is_parallelizable): only the
    /// wavefront engine consumes this fact.
    pub wavefront: Option<crate::wavefront::WavefrontFact>,
}

impl LoopReport {
    /// True when an executor may run the loop's iterations concurrently —
    /// either fully independent (`parallel`) or via reduction dispatch.
    pub fn is_parallelizable(&self) -> bool {
        self.parallel || !self.reductions.is_empty()
    }

    /// The verdict class of the loop — the one classification every
    /// consumer (CLI tables, JSON output, the session API) renders from.
    pub fn verdict(&self) -> VerdictKind {
        if self.parallel {
            VerdictKind::Parallel
        } else if !self.reductions.is_empty() {
            VerdictKind::Reduction
        } else {
            VerdictKind::Serial
        }
    }

    /// The loop's reductions rendered as an OpenMP-style clause body
    /// (`+:total,min:best`); empty for non-reduction loops.
    pub fn reduction_clause(&self) -> String {
        reduction_clause(&self.reductions)
    }
}

/// How a loop may legally execute, as proven at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictKind {
    /// Iterations are independent: dispatch freely.
    Parallel,
    /// Iterations carry only well-formed accumulators: dispatch with
    /// per-thread partials and a combiner.
    Reduction,
    /// A dependence blocks concurrent execution.
    Serial,
}

impl VerdictKind {
    /// Stable lower-case label (`parallel` / `reduction` / `serial`) used
    /// by machine-readable output.
    pub fn label(&self) -> &'static str {
        match self {
            VerdictKind::Parallel => "parallel",
            VerdictKind::Reduction => "reduction",
            VerdictKind::Serial => "serial",
        }
    }
}

/// The full report for a program.
#[derive(Debug, Clone)]
pub struct ParallelizationReport {
    /// Program name.
    pub name: String,
    /// Per-loop reports in loop-id order.
    pub loops: Vec<LoopReport>,
    /// The property database at the end of the program (for inspection).
    pub final_db: PropertyDatabase,
    /// The input program annotated with `#pragma omp parallel for` on every
    /// loop proven parallel by the extended test (outermost-parallel loops
    /// only, as OpenMP would nest otherwise).
    pub annotated_source: String,
}

impl ParallelizationReport {
    /// The report for a specific loop.
    pub fn loop_report(&self, id: LoopId) -> Option<&LoopReport> {
        self.loops.iter().find(|l| l.loop_id == id)
    }

    /// Loops the extended test proves parallel.
    pub fn parallel_loops(&self) -> Vec<LoopId> {
        self.loops
            .iter()
            .filter(|l| l.parallel)
            .map(|l| l.loop_id)
            .collect()
    }

    /// Loops the extended test proves parallel but the baseline cannot —
    /// i.e. the loops the paper's technique newly enables.
    pub fn newly_enabled_loops(&self) -> Vec<LoopId> {
        self.loops
            .iter()
            .filter(|l| l.parallel && !l.baseline_parallel)
            .map(|l| l.loop_id)
            .collect()
    }

    /// True if the loop is parallelizable (independence- or
    /// reduction-parallel) and no enclosing loop is — the loops an executor
    /// actually dispatches to threads (inner parallel loops run serially
    /// inside their parallel ancestor, exactly as the `#pragma` annotation
    /// logic avoids nesting OpenMP regions).
    pub fn is_outermost_parallel(&self, id: LoopId) -> bool {
        let Some(report) = self.loop_report(id) else {
            return false;
        };
        if !report.is_parallelizable() {
            return false;
        }
        let mut parent = report.parent;
        while let Some(p) = parent {
            match self.loop_report(p) {
                Some(anc) => {
                    if anc.is_parallelizable() {
                        return false;
                    }
                    parent = anc.parent;
                }
                None => break,
            }
        }
        true
    }

    /// The loops an executor dispatches to threads (see
    /// [`is_outermost_parallel`](Self::is_outermost_parallel)), in loop-id
    /// order.  This is the per-loop schedule the `ss-interp` parallel engine
    /// consumes.
    pub fn outermost_parallel_loops(&self) -> Vec<LoopId> {
        self.loops
            .iter()
            .filter(|l| self.is_outermost_parallel(l.loop_id))
            .map(|l| l.loop_id)
            .collect()
    }

    /// A human-readable multi-line summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("program {}\n", self.name));
        for l in &self.loops {
            let reduction_status;
            let status = match (l.parallel, l.baseline_parallel) {
                (true, true) => "parallel (also without properties)",
                (true, false) => "PARALLEL (enabled by index-array properties)",
                (false, _) if !l.reductions.is_empty() => {
                    reduction_status =
                        format!("PARALLEL (reduction {})", reduction_clause(&l.reductions));
                    reduction_status.as_str()
                }
                (false, _) => "serial",
            };
            out.push_str(&format!(
                "  {} ({}, depth {}): {}\n",
                l.loop_id, l.index_var, l.depth, status
            ));
            for r in &l.reasons {
                out.push_str(&format!("      + {r}\n"));
            }
            for b in &l.blockers {
                out.push_str(&format!("      - {b}\n"));
            }
        }
        out
    }
}

/// Parses and analyzes a mini-C source string.
pub fn parallelize_source(name: &str, src: &str) -> Result<ParallelizationReport, ss_ir::IrError> {
    let program = parse_program(name, src)?;
    Ok(parallelize(&program))
}

/// Analyzes an already-parsed program.
pub fn parallelize(program: &Program) -> ParallelizationReport {
    let analysis: ProgramAnalysis = analyze_program(program);
    let tree = LoopTree::build(program);
    let slots = SlotMap::build(program);
    let extended_cfg = RangeTestConfig::default();
    let baseline_cfg = RangeTestConfig::baseline();
    let mut loops = Vec::new();
    for info in &tree.loops {
        let db = analysis.db_for_loop(info.id);
        let extended: LoopVerdict = test_loop(program, &tree, info.id, db, &extended_cfg);
        let baseline: LoopVerdict = test_loop(program, &tree, info.id, db, &baseline_cfg);
        // A loop blocked *only* by carried scalars that all turn out to be
        // well-formed accumulators is reduction-parallel.
        let reductions = if !extended.parallel
            && !extended.carried_scalars.is_empty()
            && extended.blockers.len() == extended.carried_scalars.len()
        {
            let recognized = recognize_reductions(program, info.id, &slots);
            if extended
                .carried_scalars
                .iter()
                .all(|s| recognized.iter().any(|r| r.var == *s))
            {
                recognized
            } else {
                Vec::new()
            }
        } else {
            Vec::new()
        };
        let mut reasons = extended.reasons;
        for r in &reductions {
            reasons.push(format!(
                "scalar '{}' is a {} reduction (dispatched with per-thread partials)",
                r.var,
                r.op.symbol()
            ));
        }
        // A serial loop with no carried scalars may still be wavefront-
        // schedulable: its footprint must be a function of entry state.
        let wavefront = if !extended.parallel
            && reductions.is_empty()
            && extended.carried_scalars.is_empty()
            && info.is_normalized
        {
            crate::wavefront::wavefront_fact(program, info.id)
        } else {
            None
        };
        if let Some(f) = &wavefront {
            reasons.push(format!(
                "wavefront-schedulable: footprint determined by entry state (watched {})",
                f.watched.join(",")
            ));
        }
        loops.push(LoopReport {
            loop_id: info.id,
            index_var: info.var.clone(),
            depth: info.depth,
            parent: info.parent,
            has_subscripted_subscript: ss_ir::visit::loop_has_subscripted_subscript(
                program, info.id,
            ),
            manually_parallel: info.manually_parallel(),
            parallel: extended.parallel,
            baseline_parallel: baseline.parallel,
            reasons,
            blockers: if reductions.is_empty() {
                extended.blockers
            } else {
                Vec::new()
            },
            reductions,
            wavefront,
        });
    }
    // Annotate outermost parallel loops.
    let mut report = ParallelizationReport {
        name: program.name.clone(),
        loops,
        final_db: analysis.db.clone(),
        annotated_source: String::new(),
    };
    let mut opts = PrintOptions::default();
    for id in report.outermost_parallel_loops() {
        let l = report.loop_report(id).expect("outermost loop has a report");
        let pragma = if l.reductions.is_empty() {
            "omp parallel for".to_string()
        } else {
            format!(
                "omp parallel for reduction({})",
                reduction_clause(&l.reductions)
            )
        };
        opts.extra_pragmas.insert(id.0, vec![pragma]);
    }
    report.annotated_source = print_program_with(program, &opts);
    report
}

/// Renders reductions as an OpenMP-style clause body: `+:total,min:best`.
fn reduction_clause(reductions: &[ReductionInfo]) -> String {
    reductions
        .iter()
        .map(|r| format!("{}:{}", r.op.symbol(), r.var))
        .collect::<Vec<_>>()
        .join(",")
}

// ---------------------------------------------------------------------------
// The staged compilation pipeline.
// ---------------------------------------------------------------------------

/// Wall-clock cost of one pipeline stage.
#[derive(Debug, Clone)]
pub struct StageTiming {
    /// Stage name (one of [`Artifacts::STAGES`]).
    pub stage: &'static str,
    /// Seconds spent in the stage.
    pub seconds: f64,
}

/// Everything one pipeline invocation produces, typed per stage (the
/// parse that yields [`Artifacts::program`] happens upstream, in
/// [`Artifacts::compile_source`] or at the caller; the four *timed*
/// stages are listed in [`Artifacts::STAGES`]):
///
/// | stage      | artifact                                      |
/// |------------|-----------------------------------------------|
/// | `analyze`  | [`Artifacts::report`] (dependence, privatization and reduction facts) |
/// | `slots`    | [`Artifacts::compiled`] (slot-resolved `CompiledBody`s) |
/// | `bytecode` | [`Artifacts::bytecode`] (the O0 register-machine stream) |
/// | `opt`      | [`Artifacts::optimized`] (the O1 stream)      |
///
/// Compilation happens **once** here, for the whole run: every engine (and
/// the disassembler, the benches, the fuzz harness) reads these fields
/// instead of recompiling at its own call site.  O0 and O1 streams are both
/// kept so differential consumers can execute either; `--opt-level` picks
/// which one an engine runs.
#[derive(Debug, Clone)]
pub struct Artifacts {
    /// The parsed program (the `parse` stage happens in
    /// [`Artifacts::compile_source`]; [`Artifacts::compile`] accepts an
    /// already-parsed AST).
    pub program: Program,
    /// Per-loop verdicts, reductions and index-array facts.
    pub report: ParallelizationReport,
    /// Slot-resolved op sequences (what the compiled engine executes).
    pub compiled: CompiledProgram,
    /// The unoptimized (`O0`) register-machine stream.
    pub bytecode: BytecodeProgram,
    /// The optimized (`O1`) stream: constant folding, superinstruction
    /// fusion, dead-store elimination (see `ss_ir::opt`).
    pub optimized: BytecodeProgram,
    /// Wall-clock cost per stage, in [`Artifacts::STAGES`] order.
    pub stages: Vec<StageTiming>,
    /// Lazily-populated engine-private lowerings (see
    /// [`Artifacts::engine_artifact`]), keyed by `(engine name, slot)`.
    pub ext: ExtArtifacts,
}

/// An engine-private lowering of the compiled program — e.g. the threaded
/// tier's pre-resolved handler stream — attached to [`Artifacts`] so a
/// Session artifact cache keyed by (program hash, opt level) naturally
/// caches the lowering alongside everything else, with its footprint
/// charged through [`EngineArtifact::approx_bytes`].
pub trait EngineArtifact: std::any::Any + Send + Sync {
    /// Approximate in-memory footprint in bytes (same contract as
    /// [`Artifacts::approx_bytes`]: monotone in program size, not exact).
    fn approx_bytes(&self) -> usize;
    /// Downcasting hook so the owning engine can recover its concrete type.
    fn as_any(&self) -> &dyn std::any::Any;
}

/// The keyed lazy slots holding [`EngineArtifact`]s: each engine owns the
/// `(engine name, key)` namespace it fills — the threaded tier keys by opt
/// level, the wavefront tier keys its schedule cache under a single slot.
/// Cloning an [`Artifacts`] clones the `Arc`s (the lowering is shared, not
/// redone); a slot is filled at most once per `Artifacts` value.
#[derive(Default)]
pub struct ExtArtifacts {
    #[allow(clippy::type_complexity)]
    slots: std::sync::Mutex<
        std::collections::HashMap<(&'static str, u8), std::sync::Arc<dyn EngineArtifact>>,
    >,
}

impl Clone for ExtArtifacts {
    fn clone(&self) -> Self {
        ExtArtifacts {
            slots: std::sync::Mutex::new(
                self.slots.lock().unwrap_or_else(|e| e.into_inner()).clone(),
            ),
        }
    }
}

impl std::fmt::Debug for ExtArtifacts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        let mut keys: Vec<_> = slots
            .iter()
            .map(|((engine, key), a)| (*engine, *key, a.approx_bytes()))
            .collect();
        keys.sort_unstable();
        f.debug_struct("ExtArtifacts")
            .field("slots", &keys)
            .finish()
    }
}

impl ExtArtifacts {
    /// The slot key conventionally used for a per-opt-level artifact.
    pub fn level_key(level: OptLevel) -> u8 {
        match level {
            OptLevel::O0 => 0,
            OptLevel::O1 => 1,
        }
    }

    /// Footprint of the populated slots.
    pub fn approx_bytes(&self) -> usize {
        self.slots
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .map(|a| a.approx_bytes())
            .sum()
    }
}

impl Artifacts {
    /// The named stages of the pipeline, in execution order.
    pub const STAGES: [&'static str; 4] = ["analyze", "slots", "bytecode", "opt"];

    /// Runs the full pipeline on an already-parsed program.
    pub fn compile(program: &Program) -> Artifacts {
        let mut stages = Vec::with_capacity(Self::STAGES.len());
        let mut timed = |stage: &'static str, start: Instant| {
            stages.push(StageTiming {
                stage,
                seconds: start.elapsed().as_secs_f64(),
            });
        };
        let t = Instant::now();
        let report = parallelize(program);
        timed("analyze", t);
        let t = Instant::now();
        let compiled = compile_slots(program);
        timed("slots", t);
        let t = Instant::now();
        let bytecode = compile_bytecode(&compiled);
        timed("bytecode", t);
        let t = Instant::now();
        let optimized = optimize(&bytecode, OptLevel::O1);
        timed("opt", t);
        Artifacts {
            program: program.clone(),
            report,
            compiled,
            bytecode,
            optimized,
            stages,
            ext: ExtArtifacts::default(),
        }
    }

    /// Parses `src` and runs the pipeline (`parse` included).
    pub fn compile_source(name: &str, src: &str) -> Result<Artifacts, IrError> {
        Ok(Artifacts::compile(&parse_program(name, src)?))
    }

    /// The bytecode stream an engine runs at `level`.
    pub fn bytecode_at(&self, level: OptLevel) -> &BytecodeProgram {
        match level {
            OptLevel::O0 => &self.bytecode,
            OptLevel::O1 => &self.optimized,
        }
    }

    /// The engine-private lowering stored under `(engine, key)`, creating
    /// it with `lower` on first use.  Exactly one lowering per (Artifacts
    /// value, slot) is ever created — the slot map's lock is held across
    /// `lower`, and clones of these artifacts share the `Arc` — so an
    /// engine that lowers here pays the cost once per cached program, not
    /// once per run.  Per-opt-level artifacts key by
    /// [`ExtArtifacts::level_key`]; keys are namespaced by engine name, so
    /// engines never collide.
    pub fn engine_artifact(
        &self,
        engine: &'static str,
        key: u8,
        lower: impl FnOnce() -> std::sync::Arc<dyn EngineArtifact>,
    ) -> std::sync::Arc<dyn EngineArtifact> {
        let mut slots = self.ext.slots.lock().unwrap_or_else(|e| e.into_inner());
        slots.entry((engine, key)).or_insert_with(lower).clone()
    }

    /// Approximate in-memory footprint of these artifacts in bytes: both
    /// bytecode streams (instructions, constant pools, interned names),
    /// the annotated source, and a fixed allowance per analyzed loop for
    /// the report and the compiled op trees.  This is the per-entry
    /// accounting a byte-bounded artifact cache
    /// (`Session::with_cache_capacity_bytes`) charges — deliberately an
    /// estimate: it only has to be monotone in program size, not exact.
    pub fn approx_bytes(&self) -> usize {
        /// Per-loop allowance covering the `LoopReport` (reasons, blockers,
        /// facts) and the slot-compiled op trees, which are not walked.
        const PER_LOOP_OVERHEAD: usize = 4096;
        std::mem::size_of::<Artifacts>()
            + self.bytecode.approx_bytes()
            + self.optimized.approx_bytes()
            + 2 * self.report.annotated_source.len()
            + self.report.loops.len() * PER_LOOP_OVERHEAD
            + self.ext.approx_bytes()
    }

    /// One line per stage: `analyze 0.000123s · slots …` (what
    /// `sspar analyze` prints as the pipeline trace).
    pub fn stage_summary(&self) -> String {
        self.stages
            .iter()
            .map(|s| format!("{} {:.6}s", s.stage, s.seconds))
            .collect::<Vec<_>>()
            .join(" · ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure9_report_enables_the_product_loop() {
        let src = r#"
            index = 0;
            ind = 0;
            for (i = 0; i < ROWLEN; i++) {
                count = 0;
                for (j = 0; j < COLUMNLEN; j++) {
                    if (a[i][j] != 0) {
                        count++;
                        column_number[index] = j;
                        index++;
                        value[ind] = a[i][j];
                        ind++;
                    }
                }
                rowsize[i] = count;
            }
            rowptr[0] = 0;
            for (i = 1; i < ROWLEN + 1; i++) {
                rowptr[i] = rowptr[i-1] + rowsize[i-1];
            }
            #pragma omp parallel for private(j,j1)
            for (i = 0; i < ROWLEN+1; i++) {
                if (i == 0) {
                    j1 = i;
                } else {
                    j1 = rowptr[i-1];
                }
                for (j = j1; j < rowptr[i]; j++) {
                    product_array[j] = value[j] * vector[j];
                }
            }
        "#;
        let report = parallelize_source("fig9", src).unwrap();
        let product = report.loop_report(LoopId(3)).unwrap();
        assert!(product.parallel);
        assert!(!product.baseline_parallel);
        assert!(product.manually_parallel); // matches the manual oracle
        assert!(report.newly_enabled_loops().contains(&LoopId(3)));
        assert!(
            report
                .annotated_source
                .contains("#pragma omp parallel for\nfor (i = 0; i < ROWLEN+1; i++)")
                || report
                    .annotated_source
                    .contains("#pragma omp parallel for\nfor (i = 0; i < ROWLEN + 1; i++)")
        );
        let summary = report.summary();
        assert!(summary.contains("PARALLEL (enabled by index-array properties)"));
        // the database keeps the rowptr fact for inspection
        assert!(report
            .final_db
            .has_property("rowptr", ss_properties::ArrayProperty::MonotonicInc));
    }

    #[test]
    fn serial_loops_are_reported_with_blockers() {
        let report =
            parallelize_source("hist", "for (i = 0; i < n; i++) { hist[idx[i]] = i; }").unwrap();
        let l = report.loop_report(LoopId(0)).unwrap();
        assert!(!l.parallel);
        assert!(!l.blockers.is_empty());
        assert!(l.has_subscripted_subscript);
        assert!(report.parallel_loops().is_empty());
        assert!(!report.annotated_source.contains("#pragma"));
    }

    #[test]
    fn inner_loops_of_parallel_outer_loops_are_not_double_annotated() {
        let report = parallelize_source(
            "nest",
            r#"
            for (i = 0; i < n; i++) {
                for (j = 0; j < 8; j++) {
                    x[i * 8 + j] = i + j;
                }
            }
        "#,
        )
        .unwrap();
        // Outer loop parallel; pragma emitted once (on the outer loop only).
        assert!(report.loop_report(LoopId(0)).unwrap().parallel);
        let pragma_count = report
            .annotated_source
            .matches("#pragma omp parallel for")
            .count();
        assert_eq!(pragma_count, 1);
        // The execution schedule says the same thing: dispatch the outer
        // loop, run the inner one serially inside it.
        assert_eq!(report.outermost_parallel_loops(), vec![LoopId(0)]);
        assert!(report.is_outermost_parallel(LoopId(0)));
        assert!(!report.is_outermost_parallel(LoopId(1)));
        assert!(!report.is_outermost_parallel(LoopId(99)));
    }

    #[test]
    fn sum_reduction_loops_are_scheduled_parallel_with_a_combiner() {
        let report = parallelize_source(
            "sum",
            r#"
            total = 0;
            for (k = 0; k < n; k++) {
                total += a[k];
            }
        "#,
        )
        .unwrap();
        let l = report.loop_report(LoopId(0)).unwrap();
        assert!(!l.parallel, "a reduction is not independence-parallel");
        assert!(l.is_parallelizable());
        assert_eq!(l.reductions.len(), 1);
        assert_eq!(l.reductions[0].var, "total");
        assert_eq!(l.reductions[0].op, crate::reduction::ReductionOp::Add);
        assert!(l.blockers.is_empty());
        assert!(report.outermost_parallel_loops().contains(&LoopId(0)));
        assert!(report
            .annotated_source
            .contains("#pragma omp parallel for reduction(+:total)"));
        assert!(report.summary().contains("reduction"));
    }

    #[test]
    fn reduction_plus_array_dependence_stays_serial() {
        // The histogram write blocks the loop regardless of the recognized
        // accumulator shape on `total`.
        let report = parallelize_source(
            "mix",
            r#"
            total = 0;
            for (i = 0; i < n; i++) {
                hist[idx[i]] = i;
                total += idx[i];
            }
        "#,
        )
        .unwrap();
        let l = report.loop_report(LoopId(0)).unwrap();
        assert!(!l.is_parallelizable());
        assert!(l.reductions.is_empty());
        assert!(report.outermost_parallel_loops().is_empty());
    }

    #[test]
    fn parse_errors_are_propagated() {
        assert!(parallelize_source("bad", "for (i = 0 i < n; i++) {}").is_err());
        assert!(Artifacts::compile_source("bad", "for (i = 0 i < n; i++) {}").is_err());
    }

    #[test]
    fn artifacts_carry_every_stage_product() {
        let art = Artifacts::compile_source(
            "fig2",
            r#"
            for (e = 0; e < nelt; e++) { mt_to_id[e] = e; }
            for (miel = 0; miel < nelt; miel++) {
                iel = mt_to_id[miel];
                id_to_mt[iel] = miel;
            }
        "#,
        )
        .unwrap();
        // One invocation, every stage's artifact present and consistent.
        let names: Vec<&str> = art.stages.iter().map(|s| s.stage).collect();
        assert_eq!(names, Artifacts::STAGES);
        assert!(art.report.loop_report(LoopId(1)).unwrap().parallel);
        assert_eq!(
            art.compiled.slots.scalar_count(),
            art.bytecode.slots.scalar_count()
        );
        assert_eq!(
            art.optimized.slots.scalar_count(),
            art.bytecode.slots.scalar_count()
        );
        // The O1 stream fused the subscripted-subscript load, so it is
        // strictly shorter than O0 here.
        fn count(code: &[ss_ir::Instr]) -> usize {
            code.iter()
                .map(|i| match i {
                    ss_ir::Instr::For(f) => {
                        1 + count(&f.init.code)
                            + count(&f.bound.code)
                            + count(&f.step.code)
                            + count(&f.body)
                    }
                    _ => 1,
                })
                .sum()
        }
        assert!(count(&art.optimized.main) <= count(&art.bytecode.main));
        // A temp-consumed subscripted subscript does fuse and shrink.
        let fused =
            Artifacts::compile_source("gather", "for (i = 0; i < n; i++) { out[i] = a[b[i]]; }")
                .unwrap();
        assert!(count(&fused.optimized.main) < count(&fused.bytecode.main));
        assert_eq!(art.bytecode_at(OptLevel::O0).main, art.bytecode.main);
        assert_eq!(art.bytecode_at(OptLevel::O1).main, art.optimized.main);
        let summary = art.stage_summary();
        for stage in Artifacts::STAGES {
            assert!(summary.contains(stage), "{summary}");
        }
    }
}
