//! Property-based soundness tests for the symbolic engine.
//!
//! Strategy: generate random expression trees over a small set of symbols,
//! then check that
//!
//! 1. simplification preserves the concrete value under every valuation,
//! 2. simplification is idempotent,
//! 3. `sym_eq` implies equal concrete values,
//! 4. range arithmetic brackets the corresponding concrete arithmetic,
//! 5. `Assumptions::prove_le` is never wrong when it says "proven".

use proptest::prelude::*;
use ss_symbolic::eval::Valuation;
use ss_symbolic::range::SymRange;
use ss_symbolic::relation::{Assumptions, Proof};
use ss_symbolic::simplify::{simplify, sym_eq};
use ss_symbolic::Expr;

const SYMS: [&str; 3] = ["i", "j", "n"];

/// Random expression trees without Div/Mod/Bottom/array refs (those have
/// dedicated unit tests; excluding them keeps every generated expression
/// evaluable under every valuation).
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(Expr::Int),
        prop::sample::select(&SYMS[..]).prop_map(Expr::sym),
    ];
    leaf.prop_recursive(4, 64, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::add(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::sub(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::mul(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::min(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::max(a, b)),
            inner.prop_map(Expr::neg),
        ]
    })
}

fn valuation(i: i64, j: i64, n: i64) -> Valuation {
    Valuation::new()
        .with_sym("i", i)
        .with_sym("j", j)
        .with_sym("n", n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn simplify_preserves_value(e in arb_expr(), i in -10i64..10, j in -10i64..10, n in -10i64..10) {
        let v = valuation(i, j, n);
        let original = v.eval(&e);
        let simplified = v.eval(&simplify(&e));
        // Overflow may legitimately differ (saturating vs checked); only
        // compare when both evaluate cleanly.
        if let (Ok(a), Ok(b)) = (original, simplified) {
            prop_assert_eq!(a, b, "simplification changed value of {}", e);
        }
    }

    #[test]
    fn simplify_is_idempotent(e in arb_expr()) {
        let once = simplify(&e);
        let twice = simplify(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn sym_eq_implies_equal_values(a in arb_expr(), b in arb_expr(), i in -5i64..5, j in -5i64..5, n in -5i64..5) {
        if sym_eq(&a, &b) {
            let v = valuation(i, j, n);
            if let (Ok(x), Ok(y)) = (v.eval(&a), v.eval(&b)) {
                prop_assert_eq!(x, y);
            }
        }
    }

    #[test]
    fn range_add_brackets_concrete_add(
        alo in -50i64..50, awidth in 0i64..20,
        blo in -50i64..50, bwidth in 0i64..20,
        pick_a in 0.0f64..1.0, pick_b in 0.0f64..1.0,
    ) {
        let ahi = alo + awidth;
        let bhi = blo + bwidth;
        let ra = SymRange::constant(alo, ahi);
        let rb = SymRange::constant(blo, bhi);
        let sum = ra.add(&rb);
        let diff = ra.sub(&rb);
        let a = alo + ((awidth as f64) * pick_a) as i64;
        let b = blo + ((bwidth as f64) * pick_b) as i64;
        let (slo, shi) = sum.as_const().unwrap();
        prop_assert!(slo <= a + b && a + b <= shi);
        let (dlo, dhi) = diff.as_const().unwrap();
        prop_assert!(dlo <= a - b && a - b <= dhi);
    }

    #[test]
    fn range_union_contains_both(alo in -50i64..50, awidth in 0i64..20, blo in -50i64..50, bwidth in 0i64..20) {
        let ra = SymRange::constant(alo, alo + awidth);
        let rb = SymRange::constant(blo, blo + bwidth);
        let u = ra.union(&rb).as_const().unwrap();
        prop_assert!(u.0 <= alo && alo + awidth <= u.1);
        prop_assert!(u.0 <= blo && blo + bwidth <= u.1);
    }

    #[test]
    fn proven_le_is_sound(e1 in arb_expr(), e2 in arb_expr(), i in 0i64..8, j in 0i64..8, n in 1i64..8) {
        // Assumptions match the valuation domains used below.
        let mut asm = Assumptions::new();
        asm.assume_range("i", SymRange::constant(0, 7));
        asm.assume_range("j", SymRange::constant(0, 7));
        asm.assume_range("n", SymRange::constant(1, 7));
        let verdict = asm.prove_le(&e1, &e2);
        if verdict == Proof::Proven {
            let v = valuation(i, j, n);
            if let (Ok(a), Ok(b)) = (v.eval(&e1), v.eval(&e2)) {
                prop_assert!(a <= b, "prove_le claimed {} <= {} but {} > {}", e1, e2, a, b);
            }
        }
        if verdict == Proof::Disproven {
            // Disproven means the relation fails for every valuation in range.
            let v = valuation(i, j, n);
            if let (Ok(a), Ok(b)) = (v.eval(&e1), v.eval(&e2)) {
                prop_assert!(a > b, "prove_le claimed disproven for {} <= {} but {} <= {}", e1, e2, a, b);
            }
        }
    }

    #[test]
    fn scale_brackets_concrete_multiplication(lo in -30i64..30, width in 0i64..15, k in -6i64..6, pick in 0.0f64..1.0) {
        let r = SymRange::constant(lo, lo + width);
        let scaled = r.scale(k).as_const().unwrap();
        let x = lo + ((width as f64) * pick) as i64;
        prop_assert!(scaled.0 <= k * x && k * x <= scaled.1);
    }
}
