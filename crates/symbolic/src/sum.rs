//! Closed-form aggregation of per-iteration increments.
//!
//! Phase 2 (Section 3.4) turns "the effect of one iteration" into "the effect
//! of the whole loop".  For scalar recurrences the per-iteration effect is an
//! expression over `λ` (the value at the start of the iteration) and possibly
//! the loop index `i`.  This module provides the closed forms the paper
//! describes:
//!
//! * `λ + k`  repeated `n` times ⇒ `Λ + n·k`
//! * `λ + i`  with `i` running `0 … n-1` ⇒ `Λ + n(n-1)/2`
//! * more generally `λ + (a + b·i)` ⇒ `Λ + n·a + b·n(n-1)/2`

use crate::expr::Expr;
use crate::simplify::{affine_in, simplify};
use crate::subst::lambda_to_big_lambda;

/// The closed form of `Σ_{i=lo}^{hi} 1 = hi - lo + 1` (the trip count).
pub fn trip_count(lo: &Expr, hi: &Expr) -> Expr {
    simplify(&Expr::add(Expr::sub(hi.clone(), lo.clone()), Expr::Int(1)))
}

/// The closed form of `Σ_{i=lo}^{hi} i = (hi(hi+1) - (lo-1)lo) / 2`.
///
/// To stay in integer arithmetic without introducing symbolic division the
/// result is expressed as `(hi + lo) * (hi - lo + 1) / 2`; the product of the
/// two factors is always even so truncating division is exact.
pub fn sum_of_index(lo: &Expr, hi: &Expr) -> Expr {
    let n = trip_count(lo, hi);
    let avg_num = simplify(&Expr::add(hi.clone(), lo.clone()));
    simplify(&Expr::div(Expr::mul(avg_num, n), Expr::Int(2)))
}

/// The result of aggregating a scalar recurrence across a loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Aggregate {
    /// The value after the loop, as an expression over `Λ` and loop-invariant
    /// symbols.
    Closed(Expr),
    /// The recurrence was too complex for the current aggregation algebra.
    Unknown,
}

/// Aggregates a per-iteration update `x = step(λ(x), i)` across the iteration
/// space `i = lo … hi` (inclusive), producing the value of `x` at loop exit
/// in terms of `Λ(x)`.
///
/// Handled forms (everything else returns [`Aggregate::Unknown`]):
///
/// * `step` does not mention `λ(x)`: the last iteration wins, so the result is
///   `step` with the loop index replaced by `hi` (loop-invariant values stay
///   unchanged).
/// * `step = λ(x) + c` where `c` is loop-invariant: result `Λ(x) + n·c`.
/// * `step = λ(x) + a + b·i`: result `Λ(x) + n·a + b·Σ i`.
pub fn aggregate_scalar(var: &str, step: &Expr, index: &str, lo: &Expr, hi: &Expr) -> Aggregate {
    let step = simplify(step);
    if step == Expr::Bottom {
        return Aggregate::Unknown;
    }
    if !step.contains_lambda(var) {
        // Not a recurrence in `var`: the value written in the last iteration
        // survives. If the step depends on other λ placeholders we cannot
        // resolve it here.
        if step.contains_any_lambda() {
            return Aggregate::Unknown;
        }
        let last = crate::subst::subst_sym(&step, index, hi);
        return Aggregate::Closed(last);
    }
    // Isolate the increment: step - λ(x) must not mention λ(x) any more.
    let increment = simplify(&Expr::sub(step.clone(), Expr::lambda(var)));
    if increment.contains_lambda(var) || increment.contains_any_lambda() {
        return Aggregate::Unknown;
    }
    // The increment must be loop-invariant or affine in the loop index.
    let n = trip_count(lo, hi);
    if !increment.contains_sym(index) {
        if increment.contains_any_array_ref() {
            // Array-valued increments are handled by the array-recurrence
            // logic in the aggregation crate, not here.
            return Aggregate::Unknown;
        }
        let total = simplify(&Expr::add(Expr::big_lambda(var), Expr::mul(n, increment)));
        return Aggregate::Closed(total);
    }
    match affine_in(&increment, index) {
        Some((b, a)) => {
            if a.contains_any_array_ref() {
                return Aggregate::Unknown;
            }
            let sum_i = sum_of_index(lo, hi);
            let total = simplify(&Expr::add(
                Expr::big_lambda(var),
                Expr::add(Expr::mul(n, a), Expr::mul(Expr::Int(b), sum_i)),
            ));
            Aggregate::Closed(total)
        }
        None => Aggregate::Unknown,
    }
}

/// Aggregates a per-iteration *range* update by aggregating both bounds.
/// Returns `(lo_closed, hi_closed)` or `None` if either bound resists the
/// closed forms above.
pub fn aggregate_scalar_range(
    var: &str,
    step_lo: &Expr,
    step_hi: &Expr,
    index: &str,
    lo: &Expr,
    hi: &Expr,
) -> Option<(Expr, Expr)> {
    let a = aggregate_scalar(var, step_lo, index, lo, hi);
    let b = aggregate_scalar(var, step_hi, index, lo, hi);
    match (a, b) {
        (Aggregate::Closed(x), Aggregate::Closed(y)) => Some((x, y)),
        _ => None,
    }
}

/// Re-expresses a Phase 1 value (over `λ`) as a loop-entry value (over `Λ`)
/// without aggregation; used for values that are only written once.
pub fn reinterpret_at_entry(e: &Expr) -> Expr {
    lambda_to_big_lambda(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Valuation;

    #[test]
    fn trip_count_and_index_sum() {
        assert_eq!(trip_count(&Expr::int(0), &Expr::int(9)), Expr::Int(10));
        assert_eq!(sum_of_index(&Expr::int(0), &Expr::int(9)), Expr::Int(45));
        assert_eq!(sum_of_index(&Expr::int(3), &Expr::int(5)), Expr::Int(12));
        // symbolic: 0..n-1
        let n_minus_1 = Expr::sub(Expr::sym("n"), Expr::int(1));
        let tc = trip_count(&Expr::int(0), &n_minus_1);
        assert_eq!(tc, Expr::sym("n"));
    }

    #[test]
    fn constant_increment_matches_paper_example() {
        // count: [λ : λ+1] over COLUMNLEN iterations (lo=0, hi=COLUMNLEN-1).
        // The upper bound aggregates to Λ + COLUMNLEN.
        // (The paper quotes the value *range* [Λ : Λ + COLUMNLEN - 1] for the
        // written elements because the last increment may or may not happen;
        // the aggregation of the upper bound expression itself is Λ + n·1.)
        let hi = Expr::sub(Expr::sym("COLUMNLEN"), Expr::int(1));
        let step = Expr::add(Expr::lambda("count"), Expr::int(1));
        let agg = aggregate_scalar("count", &step, "j", &Expr::int(0), &hi);
        assert_eq!(
            agg,
            Aggregate::Closed(simplify(&Expr::add(
                Expr::big_lambda("count"),
                Expr::sym("COLUMNLEN")
            )))
        );
    }

    #[test]
    fn zero_and_negative_increments() {
        let agg = aggregate_scalar("x", &Expr::lambda("x"), "i", &Expr::int(0), &Expr::int(99));
        assert_eq!(agg, Aggregate::Closed(Expr::big_lambda("x")));
        let agg = aggregate_scalar(
            "x",
            &Expr::sub(Expr::lambda("x"), Expr::int(2)),
            "i",
            &Expr::int(0),
            &Expr::int(9),
        );
        assert_eq!(
            agg,
            Aggregate::Closed(simplify(&Expr::sub(Expr::big_lambda("x"), Expr::int(20))))
        );
    }

    #[test]
    fn non_recurrence_takes_last_iteration() {
        // x = 3*i + 1, i in 0..=9  ->  x = 28 after the loop
        let step = Expr::add(Expr::mul(Expr::int(3), Expr::sym("i")), Expr::int(1));
        let agg = aggregate_scalar("x", &step, "i", &Expr::int(0), &Expr::int(9));
        assert_eq!(agg, Aggregate::Closed(Expr::Int(28)));
    }

    #[test]
    fn lambda_plus_index_uses_index_sum() {
        // x = λ(x) + i, i in 0..=n-1  ->  Λ(x) + n(n-1)/2
        let step = Expr::add(Expr::lambda("x"), Expr::sym("i"));
        let agg = aggregate_scalar(
            "x",
            &step,
            "i",
            &Expr::int(0),
            &Expr::sub(Expr::sym("n"), Expr::int(1)),
        );
        let Aggregate::Closed(closed) = agg else {
            panic!("expected closed form");
        };
        // check numerically for n = 13
        let v = Valuation::new().with_sym("n", 13);
        let mut v = v;
        v.big_lambdas.insert("x".into(), 100);
        let expected = 100 + (0..13).sum::<i64>();
        assert_eq!(v.eval(&closed).unwrap(), expected);
    }

    #[test]
    fn affine_increment_in_index() {
        // x = λ(x) + 2*i + 3, i in 0..=9 -> Λ + 2*45 + 3*10 = Λ + 120
        let step = Expr::add(
            Expr::lambda("x"),
            Expr::add(Expr::mul(Expr::int(2), Expr::sym("i")), Expr::int(3)),
        );
        let agg = aggregate_scalar("x", &step, "i", &Expr::int(0), &Expr::int(9));
        assert_eq!(
            agg,
            Aggregate::Closed(simplify(&Expr::add(Expr::big_lambda("x"), Expr::int(120))))
        );
    }

    #[test]
    fn unsupported_forms_are_unknown() {
        // multiplicative recurrence
        let agg = aggregate_scalar(
            "x",
            &Expr::mul(Expr::lambda("x"), Expr::int(2)),
            "i",
            &Expr::int(0),
            &Expr::int(9),
        );
        assert_eq!(agg, Aggregate::Unknown);
        // increment depends on another λ
        let agg = aggregate_scalar(
            "x",
            &Expr::add(Expr::lambda("x"), Expr::lambda("y")),
            "i",
            &Expr::int(0),
            &Expr::int(9),
        );
        assert_eq!(agg, Aggregate::Unknown);
        // bottom
        assert_eq!(
            aggregate_scalar("x", &Expr::Bottom, "i", &Expr::int(0), &Expr::int(9)),
            Aggregate::Unknown
        );
        // array-valued increment is deferred to the array-recurrence logic
        let agg = aggregate_scalar(
            "x",
            &Expr::add(Expr::lambda("x"), Expr::array_ref("a", Expr::sym("i"))),
            "i",
            &Expr::int(0),
            &Expr::int(9),
        );
        assert_eq!(agg, Aggregate::Unknown);
    }

    #[test]
    fn range_aggregation() {
        // count: [λ : λ + 1] over 0..=k-1 -> [Λ : Λ + k]
        let (lo, hi) = aggregate_scalar_range(
            "count",
            &Expr::lambda("count"),
            &Expr::add(Expr::lambda("count"), Expr::int(1)),
            "j",
            &Expr::int(0),
            &Expr::sub(Expr::sym("k"), Expr::int(1)),
        )
        .unwrap();
        assert_eq!(lo, Expr::big_lambda("count"));
        assert_eq!(
            hi,
            simplify(&Expr::add(Expr::big_lambda("count"), Expr::sym("k")))
        );
    }
}
