//! Substitution of symbols, `λ`/`Λ` placeholders and array references.
//!
//! Phase 1 introduces `λ(x)` placeholders and Phase 2 rewrites them to
//! `Λ(x)` or to aggregate expressions; the range-propagation pass substitutes
//! known scalar value ranges for symbols.  All of those rewrites are simple
//! structural substitutions implemented here.

use crate::expr::Expr;
use crate::range::SymRange;
use crate::simplify::simplify;
use std::collections::HashMap;

/// Replaces every occurrence of symbol `name` with `value` and simplifies.
pub fn subst_sym(e: &Expr, name: &str, value: &Expr) -> Expr {
    let out = e.rewrite_bottom_up(&|n| match n {
        Expr::Sym(ref s) if s == name => value.clone(),
        other => other,
    });
    simplify(&out)
}

/// Replaces several symbols at once and simplifies.
pub fn subst_syms(e: &Expr, map: &HashMap<String, Expr>) -> Expr {
    if map.is_empty() {
        return simplify(e);
    }
    let out = e.rewrite_bottom_up(&|n| match n {
        Expr::Sym(ref s) => map.get(s).cloned().unwrap_or(n.clone()),
        other => other,
    });
    simplify(&out)
}

/// Replaces `λ(name)` with `value` and simplifies.
pub fn subst_lambda(e: &Expr, name: &str, value: &Expr) -> Expr {
    let out = e.rewrite_bottom_up(&|n| match n {
        Expr::Lambda(ref s) if s == name => value.clone(),
        other => other,
    });
    simplify(&out)
}

/// Replaces every `λ(x)` with `Λ(x)` (used when Phase 2 re-interprets a
/// per-iteration summary at loop entry).
pub fn lambda_to_big_lambda(e: &Expr) -> Expr {
    let out = e.rewrite_bottom_up(&|n| match n {
        Expr::Lambda(ref s) => Expr::BigLambda(s.clone()),
        other => other,
    });
    simplify(&out)
}

/// Replaces `Λ(name)` with `value` and simplifies (used when collapsing a
/// loop into its surrounding context, where the value at loop entry is
/// known).
pub fn subst_big_lambda(e: &Expr, name: &str, value: &Expr) -> Expr {
    let out = e.rewrite_bottom_up(&|n| match n {
        Expr::BigLambda(ref s) if s == name => value.clone(),
        other => other,
    });
    simplify(&out)
}

/// Replaces references `array[idx]` with `f(idx)` for the given array and
/// simplifies. Used, e.g., to substitute a known per-element value range's
/// bound for `rowsize[i-1]` when aggregating the `rowptr` recurrence.
pub fn subst_array_ref(e: &Expr, array: &str, f: &impl Fn(&Expr) -> Expr) -> Expr {
    let out = e.rewrite_bottom_up(&|n| match n {
        Expr::ArrayRef(ref a, ref idx) if a == array => f(idx),
        other => other,
    });
    simplify(&out)
}

/// Applies [`subst_sym`] to both bounds of a range.
pub fn subst_sym_range(r: &SymRange, name: &str, value: &Expr) -> SymRange {
    r.map_bounds(|b| subst_sym(b, name, value))
}

/// Applies [`subst_lambda`] to both bounds of a range.
pub fn subst_lambda_range(r: &SymRange, name: &str, value: &Expr) -> SymRange {
    r.map_bounds(|b| subst_lambda(b, name, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sym_substitution_simplifies() {
        let e = Expr::add(Expr::sym("i"), Expr::sym("i"));
        assert_eq!(subst_sym(&e, "i", &Expr::int(3)), Expr::Int(6));
        // untouched symbols stay
        let e = Expr::add(Expr::sym("i"), Expr::sym("j"));
        let out = subst_sym(&e, "i", &Expr::int(1));
        assert_eq!(out, Expr::Add(vec![Expr::Int(1), Expr::sym("j")]));
    }

    #[test]
    fn multi_substitution() {
        let mut m = HashMap::new();
        m.insert("a".to_string(), Expr::int(2));
        m.insert("b".to_string(), Expr::sym("n"));
        let e = Expr::add(Expr::sym("a"), Expr::mul(Expr::sym("b"), Expr::int(3)));
        let out = subst_syms(&e, &m);
        assert_eq!(
            out,
            Expr::Add(vec![
                Expr::Int(2),
                Expr::Mul(vec![Expr::Int(3), Expr::sym("n")])
            ])
        );
    }

    #[test]
    fn lambda_substitution_models_phase2() {
        // Phase 1: count = λ(count) + 1; apply twice -> λ + 2
        let step = Expr::add(Expr::lambda("count"), Expr::int(1));
        let twice = subst_lambda(&step, "count", &step);
        assert_eq!(twice, Expr::Add(vec![Expr::Int(2), Expr::lambda("count")]));
    }

    #[test]
    fn lambda_to_big_lambda_rewrites_all() {
        let e = Expr::add(Expr::lambda("count"), Expr::lambda("nza"));
        let out = lambda_to_big_lambda(&e);
        assert!(out.contains_any_big_lambda());
        assert!(!out.contains_any_lambda());
    }

    #[test]
    fn big_lambda_substitution() {
        let e = Expr::add(Expr::big_lambda("count"), Expr::sym("n"));
        let out = subst_big_lambda(&e, "count", &Expr::int(0));
        assert_eq!(out, Expr::sym("n"));
    }

    #[test]
    fn array_ref_substitution() {
        // rowptr[i-1] + rowsize[i-1]  with rowsize[*] -> 0 lower bound
        let e = Expr::add(
            Expr::array_ref("rowptr", Expr::sub(Expr::sym("i"), Expr::int(1))),
            Expr::array_ref("rowsize", Expr::sub(Expr::sym("i"), Expr::int(1))),
        );
        let out = subst_array_ref(&e, "rowsize", &|_| Expr::Int(0));
        assert_eq!(
            out,
            Expr::array_ref("rowptr", Expr::add(Expr::Int(-1), Expr::sym("i")))
        );
    }

    #[test]
    fn range_substitution() {
        let r = SymRange::new(Expr::sym("lo"), Expr::sym("hi"));
        let out = subst_sym_range(&r, "lo", &Expr::int(0));
        assert_eq!(out.lo, Expr::Int(0));
        assert_eq!(out.hi, Expr::sym("hi"));
        let r = SymRange::new(
            Expr::lambda("x"),
            Expr::add(Expr::lambda("x"), Expr::int(1)),
        );
        let out = subst_lambda_range(&r, "x", &Expr::int(10));
        assert_eq!(out, SymRange::constant(10, 11));
    }
}
