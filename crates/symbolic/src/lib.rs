//! # ss-symbolic — symbolic expression engine
//!
//! The foundation of the subscripted-subscript analysis: symbolic integer
//! expressions ([`Expr`]), canonical simplification ([`simplify()`]), symbolic
//! ranges `[lo : hi]` ([`SymRange`]), substitution, closed-form aggregation of
//! recurrences, relational reasoning under assumptions ([`Assumptions`]), and
//! concrete evaluation for testing ([`Valuation`]).
//!
//! The design follows the representation of Section 3.2 of
//! *Compile-time Parallelization of Subscripted Subscript Patterns*
//! (Bhosale & Eigenmann):
//!
//! * scalar values are **may**-ranges `[lb : ub]`,
//! * array values carry a **must** subscript range and a value range,
//! * `λ(x)` / `Λ(x)` denote a variable's value at the beginning of the
//!   current iteration / the loop,
//! * `⊥` denotes an unknown value and is absorbing.
//!
//! ```
//! use ss_symbolic::{Expr, simplify::sym_eq};
//!
//! // (front[miel] - 1) * 7 + miel   ==   7*front[miel] + miel - 7
//! let lhs = Expr::add(
//!     Expr::mul(Expr::sub(Expr::array_ref("front", Expr::sym("miel")), Expr::int(1)), Expr::int(7)),
//!     Expr::sym("miel"),
//! );
//! let rhs = Expr::add(
//!     Expr::sub(Expr::mul(Expr::int(7), Expr::array_ref("front", Expr::sym("miel"))), Expr::int(7)),
//!     Expr::sym("miel"),
//! );
//! assert!(sym_eq(&lhs, &rhs));
//! ```

pub mod eval;
pub mod expr;
pub mod range;
pub mod relation;
pub mod simplify;
pub mod subst;
pub mod sum;

pub use eval::{EvalError, Valuation};
pub use expr::Expr;
pub use range::SymRange;
pub use relation::{Assumptions, Proof};
pub use simplify::{simplify, simplify_diff, sym_eq};
pub use sum::{aggregate_scalar, Aggregate};
