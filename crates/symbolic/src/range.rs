//! Symbolic value ranges `[lo : hi]`.
//!
//! The paper's representation (Section 3.2) uses *may* ranges for scalar
//! values ("the value is somewhere in `[lb : ub]`") and *must* ranges for
//! array subscript regions ("all elements in index range `[sl : su]` carry a
//! value in `[vl : vu]`").  Both are represented by [`SymRange`]; the
//! may/must distinction lives in how the client interprets the range.

use crate::expr::Expr;
use crate::simplify::{simplify, simplify_diff};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A symbolic inclusive range `[lo : hi]`.
///
/// Either bound may be `⊥` (unknown). An *empty* range is never constructed
/// explicitly; clients that need emptiness reasoning compare bounds through
/// [`crate::relation`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SymRange {
    /// Lower bound (inclusive).
    pub lo: Expr,
    /// Upper bound (inclusive).
    pub hi: Expr,
}

impl SymRange {
    /// Builds `[lo : hi]`, simplifying both bounds.
    pub fn new(lo: Expr, hi: Expr) -> SymRange {
        SymRange {
            lo: simplify(&lo),
            hi: simplify(&hi),
        }
    }

    /// A degenerate range `[e : e]` representing an exactly-known value.
    pub fn exact(e: Expr) -> SymRange {
        let s = simplify(&e);
        SymRange {
            lo: s.clone(),
            hi: s,
        }
    }

    /// A constant range `[lo : hi]`.
    pub fn constant(lo: i64, hi: i64) -> SymRange {
        SymRange {
            lo: Expr::Int(lo),
            hi: Expr::Int(hi),
        }
    }

    /// The fully-unknown range `[⊥ : ⊥]`.
    pub fn unknown() -> SymRange {
        SymRange {
            lo: Expr::Bottom,
            hi: Expr::Bottom,
        }
    }

    /// Whether both bounds are unknown.
    pub fn is_unknown(&self) -> bool {
        self.lo == Expr::Bottom && self.hi == Expr::Bottom
    }

    /// Whether either bound is unknown.
    pub fn has_unknown_bound(&self) -> bool {
        self.lo == Expr::Bottom || self.hi == Expr::Bottom
    }

    /// Whether the range is a single exactly-known value (`lo == hi`, neither
    /// `⊥`).
    pub fn is_exact(&self) -> bool {
        !self.has_unknown_bound() && self.lo == self.hi
    }

    /// If the range is exact, returns the value.
    pub fn as_exact(&self) -> Option<&Expr> {
        if self.is_exact() {
            Some(&self.lo)
        } else {
            None
        }
    }

    /// If both bounds are integer constants, returns them.
    pub fn as_const(&self) -> Option<(i64, i64)> {
        match (self.lo.as_int(), self.hi.as_int()) {
            (Some(a), Some(b)) => Some((a, b)),
            _ => None,
        }
    }

    /// Range addition: `[a:b] + [c:d] = [a+c : b+d]`, `⊥` propagating per
    /// bound.
    pub fn add(&self, other: &SymRange) -> SymRange {
        SymRange {
            lo: bound_add(&self.lo, &other.lo),
            hi: bound_add(&self.hi, &other.hi),
        }
    }

    /// Range subtraction: `[a:b] - [c:d] = [a-d : b-c]`.
    pub fn sub(&self, other: &SymRange) -> SymRange {
        SymRange {
            lo: bound_sub(&self.lo, &other.hi),
            hi: bound_sub(&self.hi, &other.lo),
        }
    }

    /// Adds a single expression to both bounds.
    pub fn offset(&self, e: &Expr) -> SymRange {
        SymRange {
            lo: bound_add(&self.lo, e),
            hi: bound_add(&self.hi, e),
        }
    }

    /// Multiplies the range by a constant. Negative constants swap the
    /// bounds.
    pub fn scale(&self, k: i64) -> SymRange {
        let mul = |e: &Expr| -> Expr {
            if *e == Expr::Bottom {
                Expr::Bottom
            } else {
                simplify(&Expr::mul(Expr::Int(k), e.clone()))
            }
        };
        if k >= 0 {
            SymRange {
                lo: mul(&self.lo),
                hi: mul(&self.hi),
            }
        } else {
            SymRange {
                lo: mul(&self.hi),
                hi: mul(&self.lo),
            }
        }
    }

    /// Multiplication of two ranges. Only handled precisely when at least one
    /// side is an exactly-known constant; otherwise returns the unknown
    /// range (sound because unknown subsumes everything).
    pub fn mul(&self, other: &SymRange) -> SymRange {
        if let Some((k, k2)) = other.as_const() {
            if k == k2 {
                return self.scale(k);
            }
        }
        if let Some((k, k2)) = self.as_const() {
            if k == k2 {
                return other.scale(k);
            }
        }
        if let (Some((a, b)), Some((c, d))) = (self.as_const(), other.as_const()) {
            let products = [a * c, a * d, b * c, b * d];
            return SymRange::constant(
                *products.iter().min().unwrap(),
                *products.iter().max().unwrap(),
            );
        }
        SymRange::unknown()
    }

    /// Union hull of two ranges: `[min(lo1,lo2) : max(hi1,hi2)]`.
    /// Used when merging values from different control-flow paths.
    pub fn union(&self, other: &SymRange) -> SymRange {
        SymRange {
            lo: bound_min(&self.lo, &other.lo),
            hi: bound_max(&self.hi, &other.hi),
        }
    }

    /// Widening: keeps bounds that are stable, drops (to `⊥`) bounds that
    /// changed between iterations of a fixed-point computation.
    pub fn widen(&self, newer: &SymRange) -> SymRange {
        SymRange {
            lo: if crate::simplify::sym_eq(&self.lo, &newer.lo) {
                self.lo.clone()
            } else {
                Expr::Bottom
            },
            hi: if crate::simplify::sym_eq(&self.hi, &newer.hi) {
                self.hi.clone()
            } else {
                Expr::Bottom
            },
        }
    }

    /// Substitution applied to both bounds (see [`crate::subst`]).
    pub fn map_bounds(&self, f: impl Fn(&Expr) -> Expr) -> SymRange {
        SymRange {
            lo: if self.lo == Expr::Bottom {
                Expr::Bottom
            } else {
                simplify(&f(&self.lo))
            },
            hi: if self.hi == Expr::Bottom {
                Expr::Bottom
            } else {
                simplify(&f(&self.hi))
            },
        }
    }

    /// The symbolic width `hi - lo` (None if either bound is unknown).
    pub fn width(&self) -> Option<Expr> {
        if self.has_unknown_bound() {
            None
        } else {
            Some(simplify_diff(&self.hi, &self.lo))
        }
    }

    /// True if the range mentions the given symbol in either bound.
    pub fn mentions_sym(&self, name: &str) -> bool {
        self.lo.contains_sym(name) || self.hi.contains_sym(name)
    }

    /// True if the range mentions any `λ(..)` placeholder.
    pub fn mentions_lambda(&self) -> bool {
        self.lo.contains_any_lambda() || self.hi.contains_any_lambda()
    }
}

impl fmt::Display for SymRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_exact() {
            write!(f, "[{}]", self.lo)
        } else {
            write!(f, "[{} : {}]", self.lo, self.hi)
        }
    }
}

fn bound_add(a: &Expr, b: &Expr) -> Expr {
    if *a == Expr::Bottom || *b == Expr::Bottom {
        Expr::Bottom
    } else {
        simplify(&Expr::add(a.clone(), b.clone()))
    }
}

fn bound_sub(a: &Expr, b: &Expr) -> Expr {
    if *a == Expr::Bottom || *b == Expr::Bottom {
        Expr::Bottom
    } else {
        simplify_diff(a, b)
    }
}

fn bound_min(a: &Expr, b: &Expr) -> Expr {
    if *a == Expr::Bottom || *b == Expr::Bottom {
        return Expr::Bottom;
    }
    if crate::simplify::sym_eq(a, b) {
        return a.clone();
    }
    // If the two bounds differ by a constant, the smaller one is known even
    // when both are symbolic (e.g. min(λ, λ+1) = λ).
    if let Some(d) = simplify_diff(a, b).as_int() {
        return if d <= 0 { simplify(a) } else { simplify(b) };
    }
    simplify(&Expr::min(a.clone(), b.clone()))
}

fn bound_max(a: &Expr, b: &Expr) -> Expr {
    if *a == Expr::Bottom || *b == Expr::Bottom {
        return Expr::Bottom;
    }
    if crate::simplify::sym_eq(a, b) {
        return a.clone();
    }
    if let Some(d) = simplify_diff(a, b).as_int() {
        return if d >= 0 { simplify(a) } else { simplify(b) };
    }
    simplify(&Expr::max(a.clone(), b.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_constant_ranges() {
        let r = SymRange::exact(Expr::add(Expr::sym("i"), Expr::int(0)));
        assert!(r.is_exact());
        assert_eq!(r.as_exact(), Some(&Expr::sym("i")));
        let c = SymRange::constant(0, 5);
        assert_eq!(c.as_const(), Some((0, 5)));
        assert!(!c.is_exact());
    }

    #[test]
    fn addition_and_subtraction() {
        let a = SymRange::constant(1, 2);
        let b = SymRange::constant(10, 20);
        assert_eq!(a.add(&b), SymRange::constant(11, 22));
        assert_eq!(b.sub(&a), SymRange::constant(8, 19));
        // symbolic
        let l = SymRange::new(Expr::lambda("count"), Expr::lambda("count"));
        let one = SymRange::constant(0, 1);
        let sum = l.add(&one);
        assert_eq!(sum.lo, Expr::lambda("count"));
        assert_eq!(
            sum.hi,
            simplify(&Expr::add(Expr::lambda("count"), Expr::int(1)))
        );
    }

    #[test]
    fn bottom_propagates_per_bound() {
        let u = SymRange {
            lo: Expr::Int(0),
            hi: Expr::Bottom,
        };
        let c = SymRange::constant(1, 1);
        let r = u.add(&c);
        assert_eq!(r.lo, Expr::Int(1));
        assert_eq!(r.hi, Expr::Bottom);
        assert!(r.has_unknown_bound());
        assert!(!r.is_unknown());
    }

    #[test]
    fn scaling_swaps_bounds_for_negative_constants() {
        let r = SymRange::constant(2, 5);
        assert_eq!(r.scale(3), SymRange::constant(6, 15));
        assert_eq!(r.scale(-1), SymRange::constant(-5, -2));
        let s = SymRange::new(Expr::sym("a"), Expr::sym("b"));
        let neg = s.scale(-2);
        assert_eq!(neg.lo, simplify(&Expr::mul(Expr::int(-2), Expr::sym("b"))));
        assert_eq!(neg.hi, simplify(&Expr::mul(Expr::int(-2), Expr::sym("a"))));
    }

    #[test]
    fn multiplication_constant_cases() {
        let a = SymRange::constant(-2, 3);
        let b = SymRange::constant(4, 4);
        assert_eq!(a.mul(&b), SymRange::constant(-8, 12));
        let c = SymRange::constant(-1, 2);
        assert_eq!(a.mul(&c), SymRange::constant(-4, 6));
        // symbolic times non-exact constant range: unknown
        let s = SymRange::new(Expr::sym("n"), Expr::sym("m"));
        assert!(s.mul(&c).is_unknown());
        // symbolic times exact constant: scaled
        assert_eq!(
            s.mul(&SymRange::constant(2, 2)),
            SymRange::new(
                Expr::mul(Expr::int(2), Expr::sym("n")),
                Expr::mul(Expr::int(2), Expr::sym("m"))
            )
        );
    }

    #[test]
    fn union_hull() {
        let a = SymRange::constant(0, 5);
        let b = SymRange::constant(3, 9);
        assert_eq!(a.union(&b), SymRange::constant(0, 9));
        let s = SymRange::new(Expr::sym("x"), Expr::sym("x"));
        let u = a.union(&s);
        assert_eq!(u.lo, Expr::Min(vec![Expr::Int(0), Expr::sym("x")]));
        assert_eq!(u.hi, Expr::Max(vec![Expr::Int(5), Expr::sym("x")]));
    }

    #[test]
    fn widening_keeps_stable_bounds() {
        let a = SymRange::new(Expr::int(0), Expr::sym("n"));
        let b = SymRange::new(Expr::int(0), Expr::add(Expr::sym("n"), Expr::int(1)));
        let w = a.widen(&b);
        assert_eq!(w.lo, Expr::Int(0));
        assert_eq!(w.hi, Expr::Bottom);
    }

    #[test]
    fn width_and_display() {
        let r = SymRange::new(Expr::sym("j1"), Expr::sub(Expr::sym("j2"), Expr::int(1)));
        let w = r.width().unwrap();
        assert_eq!(
            w,
            simplify(&Expr::sub(
                Expr::sub(Expr::sym("j2"), Expr::int(1)),
                Expr::sym("j1")
            ))
        );
        assert_eq!(format!("{}", SymRange::constant(0, 5)), "[0 : 5]");
        assert_eq!(format!("{}", SymRange::exact(Expr::sym("i"))), "[i]");
    }
}
