//! Symbolic integer expressions.
//!
//! The analysis of the paper (Section 3.2) represents variable values as
//! symbolic expressions that may mention:
//!
//! * program symbols (loop bounds such as `ROWLEN`, loop indices such as `i`),
//! * `λ` — the value of the variable being analyzed at the *beginning of the
//!   loop iteration* (used by Phase 1),
//! * `Λ` — the value of the variable at the *beginning of the loop* (used by
//!   Phase 2 and in collapsed-loop summaries),
//! * `⊥` — an unknown value, produced whenever an expression is too complex
//!   for the analysis to track,
//! * symbolic array element references such as `rowptr[i - 1]`, which are the
//!   key ingredient for recognizing the recurrence patterns of Section 3.4.
//!
//! Expressions are plain trees ([`Expr`]); the [`mod@crate::simplify`] module
//! brings them into a canonical sum-of-products form so that structurally
//! different but equal expressions compare equal.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A symbolic integer expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// A named program symbol: a scalar variable, loop index or symbolic
    /// constant such as `ROWLEN`.
    Sym(String),
    /// `λ(x)` — the value of variable `x` at the beginning of the current
    /// loop iteration (Phase 1 placeholder).
    Lambda(String),
    /// `Λ(x)` — the value of variable `x` at the beginning of the loop
    /// (Phase 2 / collapsed-loop placeholder).
    BigLambda(String),
    /// `⊥` — unknown value.
    Bottom,
    /// `a[e]` — symbolic reference to element `e` of array `a`.
    ArrayRef(String, Box<Expr>),
    /// N-ary addition.
    Add(Vec<Expr>),
    /// N-ary multiplication.
    Mul(Vec<Expr>),
    /// Truncating integer division `a / b` (C semantics, rounds toward zero;
    /// the analysis only reasons about it when the sign is known).
    Div(Box<Expr>, Box<Expr>),
    /// Remainder `a % b` (C semantics).
    Mod(Box<Expr>, Box<Expr>),
    /// N-ary minimum.
    Min(Vec<Expr>),
    /// N-ary maximum.
    Max(Vec<Expr>),
}

// The arithmetic constructors below deliberately mirror the expression
// language (`Expr::add(a, b)` builds an unsimplified sum); they are
// associated functions, not operator implementations.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Integer literal convenience constructor.
    pub fn int(v: i64) -> Expr {
        Expr::Int(v)
    }

    /// Named symbol convenience constructor.
    pub fn sym(name: impl Into<String>) -> Expr {
        Expr::Sym(name.into())
    }

    /// `λ(name)` constructor.
    pub fn lambda(name: impl Into<String>) -> Expr {
        Expr::Lambda(name.into())
    }

    /// `Λ(name)` constructor.
    pub fn big_lambda(name: impl Into<String>) -> Expr {
        Expr::BigLambda(name.into())
    }

    /// Symbolic array element reference `array[index]`.
    pub fn array_ref(array: impl Into<String>, index: Expr) -> Expr {
        Expr::ArrayRef(array.into(), Box::new(index))
    }

    /// `a + b` (not simplified).
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(vec![a, b])
    }

    /// `a - b` (not simplified).
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Add(vec![a, Expr::Mul(vec![Expr::Int(-1), b])])
    }

    /// `a * b` (not simplified).
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(vec![a, b])
    }

    /// `-a` (not simplified).
    pub fn neg(a: Expr) -> Expr {
        Expr::Mul(vec![Expr::Int(-1), a])
    }

    /// `a / b` (truncating division, not simplified).
    pub fn div(a: Expr, b: Expr) -> Expr {
        Expr::Div(Box::new(a), Box::new(b))
    }

    /// `a % b` (not simplified).
    pub fn modulo(a: Expr, b: Expr) -> Expr {
        Expr::Mod(Box::new(a), Box::new(b))
    }

    /// `min(a, b)` (not simplified).
    pub fn min(a: Expr, b: Expr) -> Expr {
        Expr::Min(vec![a, b])
    }

    /// `max(a, b)` (not simplified).
    pub fn max(a: Expr, b: Expr) -> Expr {
        Expr::Max(vec![a, b])
    }

    /// Returns `Some(v)` if the expression is an integer literal.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Expr::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns `true` if the expression is the literal zero.
    pub fn is_zero(&self) -> bool {
        matches!(self, Expr::Int(0))
    }

    /// Returns `true` if the expression is the literal one.
    pub fn is_one(&self) -> bool {
        matches!(self, Expr::Int(1))
    }

    /// Returns `true` if the expression is (or contains) `⊥`.
    pub fn contains_bottom(&self) -> bool {
        self.any_node(&mut |e| matches!(e, Expr::Bottom))
    }

    /// Returns `true` if the expression mentions the given symbol name
    /// (as a `Sym`, not as a `Lambda`/`BigLambda`/array name).
    pub fn contains_sym(&self, name: &str) -> bool {
        self.any_node(&mut |e| matches!(e, Expr::Sym(s) if s == name))
    }

    /// Returns `true` if the expression mentions `λ(name)`.
    pub fn contains_lambda(&self, name: &str) -> bool {
        self.any_node(&mut |e| matches!(e, Expr::Lambda(s) if s == name))
    }

    /// Returns `true` if the expression mentions any `λ(..)`.
    pub fn contains_any_lambda(&self) -> bool {
        self.any_node(&mut |e| matches!(e, Expr::Lambda(_)))
    }

    /// Returns `true` if the expression mentions any `Λ(..)`.
    pub fn contains_any_big_lambda(&self) -> bool {
        self.any_node(&mut |e| matches!(e, Expr::BigLambda(_)))
    }

    /// Returns `true` if the expression mentions a reference to the given
    /// array.
    pub fn contains_array_ref(&self, array: &str) -> bool {
        self.any_node(&mut |e| matches!(e, Expr::ArrayRef(a, _) if a == array))
    }

    /// Returns `true` if the expression mentions any array reference.
    pub fn contains_any_array_ref(&self) -> bool {
        self.any_node(&mut |e| matches!(e, Expr::ArrayRef(_, _)))
    }

    /// Collects the names of all `Sym` nodes in the expression.
    pub fn symbols(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.for_each_node(&mut |e| {
            if let Expr::Sym(s) = e {
                if !out.contains(s) {
                    out.push(s.clone());
                }
            }
        });
        out
    }

    /// Collects the names of all arrays referenced in the expression.
    pub fn array_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.for_each_node(&mut |e| {
            if let Expr::ArrayRef(a, _) = e {
                if !out.contains(a) {
                    out.push(a.clone());
                }
            }
        });
        out
    }

    /// Returns the immediate children of this node.
    pub fn children(&self) -> Vec<&Expr> {
        match self {
            Expr::Int(_) | Expr::Sym(_) | Expr::Lambda(_) | Expr::BigLambda(_) | Expr::Bottom => {
                vec![]
            }
            Expr::ArrayRef(_, idx) => vec![idx],
            Expr::Add(xs) | Expr::Mul(xs) | Expr::Min(xs) | Expr::Max(xs) => xs.iter().collect(),
            Expr::Div(a, b) | Expr::Mod(a, b) => vec![a, b],
        }
    }

    /// Visits every node (pre-order) and returns true if `pred` holds for any.
    pub fn any_node(&self, pred: &mut impl FnMut(&Expr) -> bool) -> bool {
        if pred(self) {
            return true;
        }
        self.children().into_iter().any(|c| c.any_node(pred))
    }

    /// Visits every node in pre-order.
    pub fn for_each_node(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        for c in self.children() {
            c.for_each_node(f);
        }
    }

    /// Number of nodes in the expression tree (used to cap analysis blow-up).
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.for_each_node(&mut |_| n += 1);
        n
    }

    /// Rewrites the tree bottom-up by applying `f` to each node after its
    /// children have been rewritten.
    pub fn rewrite_bottom_up(&self, f: &impl Fn(Expr) -> Expr) -> Expr {
        let rebuilt = match self {
            Expr::Int(_) | Expr::Sym(_) | Expr::Lambda(_) | Expr::BigLambda(_) | Expr::Bottom => {
                self.clone()
            }
            Expr::ArrayRef(a, idx) => Expr::ArrayRef(a.clone(), Box::new(idx.rewrite_bottom_up(f))),
            Expr::Add(xs) => Expr::Add(xs.iter().map(|x| x.rewrite_bottom_up(f)).collect()),
            Expr::Mul(xs) => Expr::Mul(xs.iter().map(|x| x.rewrite_bottom_up(f)).collect()),
            Expr::Min(xs) => Expr::Min(xs.iter().map(|x| x.rewrite_bottom_up(f)).collect()),
            Expr::Max(xs) => Expr::Max(xs.iter().map(|x| x.rewrite_bottom_up(f)).collect()),
            Expr::Div(a, b) => Expr::Div(
                Box::new(a.rewrite_bottom_up(f)),
                Box::new(b.rewrite_bottom_up(f)),
            ),
            Expr::Mod(a, b) => Expr::Mod(
                Box::new(a.rewrite_bottom_up(f)),
                Box::new(b.rewrite_bottom_up(f)),
            ),
        };
        f(rebuilt)
    }
}

impl From<i64> for Expr {
    fn from(v: i64) -> Self {
        Expr::Int(v)
    }
}

impl From<&str> for Expr {
    fn from(s: &str) -> Self {
        Expr::Sym(s.to_string())
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Int(v) => write!(f, "{v}"),
            Expr::Sym(s) => write!(f, "{s}"),
            Expr::Lambda(s) => write!(f, "λ({s})"),
            Expr::BigLambda(s) => write!(f, "Λ({s})"),
            Expr::Bottom => write!(f, "⊥"),
            Expr::ArrayRef(a, idx) => write!(f, "{a}[{idx}]"),
            Expr::Add(xs) => {
                write!(f, "(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Expr::Mul(xs) => {
                write!(f, "(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " * ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
            Expr::Mod(a, b) => write!(f, "({a} % {b})"),
            Expr::Min(xs) => {
                write!(f, "min(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Expr::Max(xs) => {
                write!(f, "max(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_build_expected_shapes() {
        assert_eq!(Expr::int(3), Expr::Int(3));
        assert_eq!(Expr::sym("n"), Expr::Sym("n".into()));
        assert_eq!(
            Expr::add(Expr::int(1), Expr::sym("i")),
            Expr::Add(vec![Expr::Int(1), Expr::Sym("i".into())])
        );
        assert_eq!(
            Expr::sub(Expr::sym("a"), Expr::sym("b")),
            Expr::Add(vec![
                Expr::Sym("a".into()),
                Expr::Mul(vec![Expr::Int(-1), Expr::Sym("b".into())])
            ])
        );
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::add(
            Expr::array_ref("rowptr", Expr::sub(Expr::sym("i"), Expr::int(1))),
            Expr::int(4),
        );
        assert_eq!(format!("{e}"), "(rowptr[(i + (-1 * 1))] + 4)");
        assert_eq!(format!("{}", Expr::lambda("count")), "λ(count)");
        assert_eq!(format!("{}", Expr::big_lambda("count")), "Λ(count)");
        assert_eq!(format!("{}", Expr::Bottom), "⊥");
    }

    #[test]
    fn contains_queries() {
        let e = Expr::add(
            Expr::lambda("count"),
            Expr::array_ref("rowsize", Expr::sym("i")),
        );
        assert!(e.contains_lambda("count"));
        assert!(!e.contains_lambda("other"));
        assert!(e.contains_array_ref("rowsize"));
        assert!(!e.contains_array_ref("rowptr"));
        assert!(e.contains_sym("i"));
        assert!(!e.contains_bottom());
        assert!(Expr::add(Expr::Bottom, Expr::int(1)).contains_bottom());
    }

    #[test]
    fn symbols_and_array_names_are_deduplicated() {
        let e = Expr::add(
            Expr::add(Expr::sym("i"), Expr::sym("i")),
            Expr::add(
                Expr::array_ref("a", Expr::sym("j")),
                Expr::array_ref("a", Expr::sym("i")),
            ),
        );
        assert_eq!(e.symbols(), vec!["i".to_string(), "j".to_string()]);
        assert_eq!(e.array_names(), vec!["a".to_string()]);
    }

    #[test]
    fn size_counts_nodes() {
        let e = Expr::add(Expr::int(1), Expr::mul(Expr::sym("i"), Expr::int(2)));
        // Add, Int, Mul, Sym, Int
        assert_eq!(e.size(), 5);
    }

    #[test]
    fn rewrite_bottom_up_replaces_nodes() {
        let e = Expr::add(Expr::sym("i"), Expr::sym("j"));
        let out = e.rewrite_bottom_up(&|n| match n {
            Expr::Sym(ref s) if s == "i" => Expr::Int(7),
            other => other,
        });
        assert_eq!(out, Expr::Add(vec![Expr::Int(7), Expr::Sym("j".into())]));
    }

    #[test]
    fn from_impls() {
        let a: Expr = 5i64.into();
        let b: Expr = "n".into();
        assert_eq!(a, Expr::Int(5));
        assert_eq!(b, Expr::Sym("n".into()));
    }
}
