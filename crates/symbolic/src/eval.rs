//! Concrete evaluation of symbolic expressions.
//!
//! Not used by the compile-time analysis itself, but essential for testing:
//! property-based tests draw random valuations for symbols and array
//! contents and check that simplification, substitution and range arithmetic
//! are sound with respect to actual integer arithmetic.

use crate::expr::Expr;
use std::collections::HashMap;

/// A concrete valuation: integer values for symbols and `λ`/`Λ`
/// placeholders, plus concrete contents for arrays.
#[derive(Debug, Clone, Default)]
pub struct Valuation {
    /// Values of program symbols.
    pub syms: HashMap<String, i64>,
    /// Values of `λ(x)` placeholders.
    pub lambdas: HashMap<String, i64>,
    /// Values of `Λ(x)` placeholders.
    pub big_lambdas: HashMap<String, i64>,
    /// Array contents (index 0-based).
    pub arrays: HashMap<String, Vec<i64>>,
}

/// Errors during concrete evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A symbol had no value in the valuation.
    UnboundSymbol(String),
    /// A `λ`/`Λ` placeholder had no value.
    UnboundPlaceholder(String),
    /// An array was missing or the index was out of bounds / negative.
    BadArrayAccess(String, i64),
    /// Division or remainder by zero.
    DivisionByZero,
    /// The expression contained `⊥`.
    Unknown,
    /// Arithmetic overflow.
    Overflow,
}

impl Valuation {
    /// Creates an empty valuation.
    pub fn new() -> Valuation {
        Valuation::default()
    }

    /// Sets a symbol value (builder style).
    pub fn with_sym(mut self, name: impl Into<String>, v: i64) -> Self {
        self.syms.insert(name.into(), v);
        self
    }

    /// Sets an array's contents (builder style).
    pub fn with_array(mut self, name: impl Into<String>, v: Vec<i64>) -> Self {
        self.arrays.insert(name.into(), v);
        self
    }

    /// Evaluates an expression to a concrete integer.
    pub fn eval(&self, e: &Expr) -> Result<i64, EvalError> {
        match e {
            Expr::Int(v) => Ok(*v),
            Expr::Sym(s) => self
                .syms
                .get(s)
                .copied()
                .ok_or_else(|| EvalError::UnboundSymbol(s.clone())),
            Expr::Lambda(s) => self
                .lambdas
                .get(s)
                .copied()
                .ok_or_else(|| EvalError::UnboundPlaceholder(s.clone())),
            Expr::BigLambda(s) => self
                .big_lambdas
                .get(s)
                .copied()
                .ok_or_else(|| EvalError::UnboundPlaceholder(s.clone())),
            Expr::Bottom => Err(EvalError::Unknown),
            Expr::ArrayRef(a, idx) => {
                let i = self.eval(idx)?;
                let arr = self
                    .arrays
                    .get(a)
                    .ok_or_else(|| EvalError::BadArrayAccess(a.clone(), i))?;
                if i < 0 || (i as usize) >= arr.len() {
                    return Err(EvalError::BadArrayAccess(a.clone(), i));
                }
                Ok(arr[i as usize])
            }
            Expr::Add(xs) => {
                let mut acc: i64 = 0;
                for x in xs {
                    acc = acc.checked_add(self.eval(x)?).ok_or(EvalError::Overflow)?;
                }
                Ok(acc)
            }
            Expr::Mul(xs) => {
                let mut acc: i64 = 1;
                for x in xs {
                    acc = acc.checked_mul(self.eval(x)?).ok_or(EvalError::Overflow)?;
                }
                Ok(acc)
            }
            Expr::Div(a, b) => {
                let (x, y) = (self.eval(a)?, self.eval(b)?);
                if y == 0 {
                    Err(EvalError::DivisionByZero)
                } else {
                    Ok(x / y)
                }
            }
            Expr::Mod(a, b) => {
                let (x, y) = (self.eval(a)?, self.eval(b)?);
                if y == 0 {
                    Err(EvalError::DivisionByZero)
                } else {
                    Ok(x % y)
                }
            }
            Expr::Min(xs) => {
                let vals: Result<Vec<i64>, _> = xs.iter().map(|x| self.eval(x)).collect();
                Ok(*vals?.iter().min().ok_or(EvalError::Unknown)?)
            }
            Expr::Max(xs) => {
                let vals: Result<Vec<i64>, _> = xs.iter().map(|x| self.eval(x)).collect();
                Ok(*vals?.iter().max().ok_or(EvalError::Unknown)?)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplify::simplify;

    #[test]
    fn evaluates_arithmetic() {
        let v = Valuation::new().with_sym("i", 4).with_sym("n", 10);
        let e = Expr::add(
            Expr::mul(Expr::sym("i"), Expr::int(3)),
            Expr::sub(Expr::sym("n"), Expr::int(1)),
        );
        assert_eq!(v.eval(&e), Ok(21));
        assert_eq!(v.eval(&Expr::div(Expr::sym("n"), Expr::int(3))), Ok(3));
        assert_eq!(v.eval(&Expr::modulo(Expr::sym("n"), Expr::int(3))), Ok(1));
        assert_eq!(v.eval(&Expr::min(Expr::sym("i"), Expr::sym("n"))), Ok(4));
        assert_eq!(v.eval(&Expr::max(Expr::sym("i"), Expr::sym("n"))), Ok(10));
    }

    #[test]
    fn evaluates_array_refs() {
        let v = Valuation::new()
            .with_sym("i", 2)
            .with_array("rowptr", vec![0, 3, 5, 9]);
        let e = Expr::array_ref("rowptr", Expr::add(Expr::sym("i"), Expr::int(1)));
        assert_eq!(v.eval(&e), Ok(9));
        let oob = Expr::array_ref("rowptr", Expr::int(4));
        assert!(matches!(v.eval(&oob), Err(EvalError::BadArrayAccess(_, 4))));
    }

    #[test]
    fn error_cases() {
        let v = Valuation::new();
        assert_eq!(
            v.eval(&Expr::sym("missing")),
            Err(EvalError::UnboundSymbol("missing".into()))
        );
        assert_eq!(v.eval(&Expr::Bottom), Err(EvalError::Unknown));
        assert_eq!(
            v.eval(&Expr::div(Expr::int(1), Expr::int(0))),
            Err(EvalError::DivisionByZero)
        );
    }

    #[test]
    fn simplification_preserves_value() {
        let v = Valuation::new().with_sym("i", 7).with_sym("n", 3);
        let e = Expr::add(
            Expr::mul(Expr::sub(Expr::sym("i"), Expr::int(1)), Expr::int(7)),
            Expr::mul(Expr::sym("n"), Expr::sym("i")),
        );
        let s = simplify(&e);
        assert_eq!(v.eval(&e).unwrap(), v.eval(&s).unwrap());
    }
}
