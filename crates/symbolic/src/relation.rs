//! Proving relations between symbolic expressions under assumptions.
//!
//! The extended Range Test (Section 5 of the paper) must answer questions of
//! the form "is `rowptr[i] <= rowptr[i+1]` for every `i` in the loop range?".
//! After the aggregation pass has substituted what it knows (e.g. the
//! difference between the two elements equals a value range known to be
//! non-negative), such queries reduce to *sign determination* of a symbolic
//! difference under a set of assumptions:
//!
//! * value ranges for symbols (loop indices have their loop ranges, symbolic
//!   sizes like `ROWLEN` are known positive, …),
//! * expressions asserted non-negative or strictly positive.
//!
//! Sign determination evaluates the difference over the assumption intervals.
//! The result is a three-valued verdict: proven, disproven, or unknown — the
//! analysis only acts on *proven*.

use crate::expr::Expr;
use crate::range::SymRange;
use crate::simplify::{simplify, simplify_diff, sym_eq};
use std::collections::HashMap;
use std::fmt;

/// Outcome of a relational query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proof {
    /// The relation definitely holds.
    Proven,
    /// The relation definitely does not hold.
    Disproven,
    /// The analysis cannot tell.
    Unknown,
}

impl Proof {
    /// True iff the relation was proven.
    pub fn is_proven(&self) -> bool {
        matches!(self, Proof::Proven)
    }
}

impl fmt::Display for Proof {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Proof::Proven => write!(f, "proven"),
            Proof::Disproven => write!(f, "disproven"),
            Proof::Unknown => write!(f, "unknown"),
        }
    }
}

/// A set of facts under which relations are evaluated.
#[derive(Debug, Clone, Default)]
pub struct Assumptions {
    /// Known value ranges for symbols.
    sym_ranges: HashMap<String, SymRange>,
    /// Expressions known to be `>= 0`.
    nonneg: Vec<Expr>,
    /// Expressions known to be `>= 1`.
    positive: Vec<Expr>,
}

impl Assumptions {
    /// Empty assumption set.
    pub fn new() -> Assumptions {
        Assumptions::default()
    }

    /// Records `name ∈ [lo : hi]`.
    pub fn assume_range(&mut self, name: impl Into<String>, range: SymRange) -> &mut Self {
        self.sym_ranges.insert(name.into(), range);
        self
    }

    /// Records `e >= 0`.
    pub fn assume_nonneg(&mut self, e: Expr) -> &mut Self {
        self.nonneg.push(simplify(&e));
        self
    }

    /// Records `e >= 1` (strictly positive for integers).
    pub fn assume_positive(&mut self, e: Expr) -> &mut Self {
        let s = simplify(&e);
        self.positive.push(s.clone());
        self.nonneg.push(s);
        self
    }

    /// Looks up the range assumed for a symbol.
    pub fn range_of(&self, name: &str) -> Option<&SymRange> {
        self.sym_ranges.get(name)
    }

    /// All symbols with assumed ranges.
    pub fn assumed_symbols(&self) -> impl Iterator<Item = &String> {
        self.sym_ranges.keys()
    }

    /// Computes a conservative constant lower bound of `e`, if one can be
    /// derived from the assumptions. Symbols without assumptions, `λ`/`Λ`
    /// placeholders and array references contribute "unknown" unless the
    /// whole (sub)expression matches a recorded non-negative/positive fact.
    pub fn lower_bound(&self, e: &Expr) -> Option<i64> {
        self.bound(e, true)
    }

    /// Conservative constant upper bound of `e` (see [`Self::lower_bound`]).
    pub fn upper_bound(&self, e: &Expr) -> Option<i64> {
        self.bound(e, false)
    }

    fn fact_lower_bound(&self, e: &Expr) -> Option<i64> {
        if self.positive.iter().any(|p| sym_eq(p, e)) {
            return Some(1);
        }
        if self.nonneg.iter().any(|p| sym_eq(p, e)) {
            return Some(0);
        }
        None
    }

    fn bound(&self, e: &Expr, lower: bool) -> Option<i64> {
        // A recorded fact about the whole expression takes precedence for
        // lower bounds (facts never provide upper bounds).
        if lower {
            if let Some(b) = self.fact_lower_bound(&simplify(e)) {
                return Some(b);
            }
        }
        match e {
            Expr::Int(v) => Some(*v),
            Expr::Sym(s) => {
                let r = self.sym_ranges.get(s)?;
                let b = if lower { &r.lo } else { &r.hi };
                // Bounds of assumed ranges may themselves be symbolic; recurse.
                if *b == Expr::Bottom {
                    None
                } else if let Some(v) = b.as_int() {
                    Some(v)
                } else {
                    self.bound(b, lower)
                }
            }
            Expr::Add(xs) => {
                let mut total: i64 = 0;
                for x in xs {
                    total = total.checked_add(self.bound(x, lower)?)?;
                }
                Some(total)
            }
            Expr::Mul(xs) => {
                // Handle the common `constant * rest` shape.
                let mut constant: i64 = 1;
                let mut rest: Vec<Expr> = Vec::new();
                for x in xs {
                    match x.as_int() {
                        Some(v) => constant = constant.checked_mul(v)?,
                        None => rest.push(x.clone()),
                    }
                }
                if rest.is_empty() {
                    return Some(constant);
                }
                if rest.len() == 1 {
                    // constant * inner: pick the matching bound of inner based
                    // on the sign of the constant.
                    let inner = rest.pop().unwrap();
                    let want_lower_of_inner = (constant >= 0) == lower;
                    let ib = self.bound(&inner, want_lower_of_inner)?;
                    return constant.checked_mul(ib);
                }
                // General product: fold factor intervals. Requires both bounds
                // of every non-constant factor.
                let mut lo = constant;
                let mut hi = constant;
                if lo > hi {
                    std::mem::swap(&mut lo, &mut hi);
                }
                for x in &rest {
                    let xl = self.bound(x, true)?;
                    let xh = self.bound(x, false)?;
                    let cands = [
                        lo.checked_mul(xl)?,
                        lo.checked_mul(xh)?,
                        hi.checked_mul(xl)?,
                        hi.checked_mul(xh)?,
                    ];
                    lo = *cands.iter().min().unwrap();
                    hi = *cands.iter().max().unwrap();
                }
                Some(if lower { lo } else { hi })
            }
            Expr::Min(xs) => {
                let bounds: Option<Vec<i64>> = xs.iter().map(|x| self.bound(x, lower)).collect();
                if lower {
                    bounds.map(|b| b.into_iter().min().unwrap())
                } else {
                    // upper bound of min: need all upper bounds; min of them
                    bounds.map(|b| b.into_iter().min().unwrap())
                }
            }
            Expr::Max(xs) => {
                let bounds: Option<Vec<i64>> = xs.iter().map(|x| self.bound(x, lower)).collect();
                bounds.map(|b| b.into_iter().max().unwrap())
            }
            Expr::Mod(_, m) => {
                // `a % m` with positive constant m lies in (-(m-1), m-1); with
                // non-negative dividend it lies in [0, m-1]. We only use the
                // generic bound here.
                let m = self.bound(m, false)?;
                if m <= 0 {
                    return None;
                }
                if lower {
                    Some(-(m - 1))
                } else {
                    Some(m - 1)
                }
            }
            // Division, λ, Λ, array refs, ⊥: no information (facts about the
            // whole expression were already consulted above).
            _ => None,
        }
    }

    /// Tries to prove `a <= b`.
    pub fn prove_le(&self, a: &Expr, b: &Expr) -> Proof {
        let d = simplify_diff(b, a);
        if d == Expr::Bottom {
            return Proof::Unknown;
        }
        if let Some(v) = d.as_int() {
            return if v >= 0 {
                Proof::Proven
            } else {
                Proof::Disproven
            };
        }
        if let Some(lb) = self.lower_bound(&d) {
            if lb >= 0 {
                return Proof::Proven;
            }
        }
        if let Some(ub) = self.upper_bound(&d) {
            if ub < 0 {
                return Proof::Disproven;
            }
        }
        Proof::Unknown
    }

    /// Tries to prove `a < b`.
    pub fn prove_lt(&self, a: &Expr, b: &Expr) -> Proof {
        let d = simplify_diff(b, a);
        if d == Expr::Bottom {
            return Proof::Unknown;
        }
        if let Some(v) = d.as_int() {
            return if v >= 1 {
                Proof::Proven
            } else {
                Proof::Disproven
            };
        }
        if let Some(lb) = self.lower_bound(&d) {
            if lb >= 1 {
                return Proof::Proven;
            }
        }
        if let Some(ub) = self.upper_bound(&d) {
            if ub < 1 {
                return Proof::Disproven;
            }
        }
        Proof::Unknown
    }

    /// Tries to prove `a >= 0`.
    pub fn prove_nonneg(&self, a: &Expr) -> Proof {
        self.prove_le(&Expr::Int(0), a)
    }

    /// Tries to prove `a == b` (both `<=` directions).
    pub fn prove_eq(&self, a: &Expr, b: &Expr) -> Proof {
        if sym_eq(a, b) {
            return Proof::Proven;
        }
        match (self.prove_le(a, b), self.prove_le(b, a)) {
            (Proof::Proven, Proof::Proven) => Proof::Proven,
            (Proof::Disproven, _) | (_, Proof::Disproven) => Proof::Disproven,
            _ => Proof::Unknown,
        }
    }

    /// Tries to prove that ranges `[a.lo : a.hi]` and `[b.lo : b.hi]` do not
    /// overlap (either `a.hi < b.lo` or `b.hi < a.lo`).  This is the core
    /// question the Range Test asks of the access regions of two loop
    /// iterations.
    pub fn prove_disjoint(&self, a: &SymRange, b: &SymRange) -> Proof {
        let first = self.prove_lt(&a.hi, &b.lo);
        if first == Proof::Proven {
            return Proof::Proven;
        }
        let second = self.prove_lt(&b.hi, &a.lo);
        if second == Proof::Proven {
            return Proof::Proven;
        }
        if first == Proof::Disproven && second == Proof::Disproven {
            // Both orderings fail: the ranges definitely touch.
            return Proof::Disproven;
        }
        Proof::Unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_relations() {
        let a = Assumptions::new();
        assert_eq!(a.prove_le(&Expr::int(1), &Expr::int(2)), Proof::Proven);
        assert_eq!(a.prove_le(&Expr::int(3), &Expr::int(2)), Proof::Disproven);
        assert_eq!(a.prove_lt(&Expr::int(2), &Expr::int(2)), Proof::Disproven);
        assert_eq!(a.prove_eq(&Expr::int(2), &Expr::int(2)), Proof::Proven);
    }

    #[test]
    fn symbol_ranges_drive_proofs() {
        let mut a = Assumptions::new();
        a.assume_range("i", SymRange::constant(0, 100));
        // i + 1 > i
        assert_eq!(
            a.prove_lt(&Expr::sym("i"), &Expr::add(Expr::sym("i"), Expr::int(1))),
            Proof::Proven
        );
        // i >= 0
        assert_eq!(a.prove_nonneg(&Expr::sym("i")), Proof::Proven);
        // i <= 100
        assert_eq!(a.prove_le(&Expr::sym("i"), &Expr::int(100)), Proof::Proven);
        // i <= 50 is unknown (i could be 80)
        assert_eq!(a.prove_le(&Expr::sym("i"), &Expr::int(50)), Proof::Unknown);
        // i < 0 is disproven
        assert_eq!(a.prove_lt(&Expr::sym("i"), &Expr::int(0)), Proof::Disproven);
    }

    #[test]
    fn symbolic_range_bounds_recurse() {
        let mut a = Assumptions::new();
        a.assume_range("n", SymRange::constant(1, 1_000_000));
        a.assume_range(
            "i",
            SymRange::new(Expr::int(0), Expr::sub(Expr::sym("n"), Expr::int(1))),
        );
        // i >= 0 via the symbolic upper bound of n
        assert_eq!(a.prove_nonneg(&Expr::sym("i")), Proof::Proven);
        // i <= n - 1  i.e.  n - 1 - i >= 0: needs the lower bound of -i which
        // comes from i's upper bound n-1, so n - 1 - (n-1) = 0 ... our interval
        // arithmetic loses the correlation and reports Unknown; record the
        // fact directly instead.
        a.assume_nonneg(Expr::sub(
            Expr::sub(Expr::sym("n"), Expr::int(1)),
            Expr::sym("i"),
        ));
        assert_eq!(
            a.prove_le(&Expr::sym("i"), &Expr::sub(Expr::sym("n"), Expr::int(1))),
            Proof::Proven
        );
    }

    #[test]
    fn nonneg_facts_apply_to_whole_expressions() {
        let mut a = Assumptions::new();
        // rowsize[i-1] >= 0 (what the aggregation pass derives from Figure 9)
        a.assume_nonneg(Expr::array_ref(
            "rowsize",
            Expr::sub(Expr::sym("i"), Expr::int(1)),
        ));
        // rowptr[i] = rowptr[i-1] + rowsize[i-1]  =>  rowptr[i] - rowptr[i-1] >= 0
        let diff = Expr::array_ref("rowsize", Expr::sub(Expr::sym("i"), Expr::int(1)));
        assert_eq!(a.prove_nonneg(&diff), Proof::Proven);
        // strict positivity not provable from a nonneg fact
        assert_eq!(a.prove_lt(&Expr::int(0), &diff), Proof::Unknown);
        // but a positive fact proves it
        a.assume_positive(Expr::sym("COLUMNLEN"));
        assert_eq!(
            a.prove_lt(&Expr::int(0), &Expr::sym("COLUMNLEN")),
            Proof::Proven
        );
    }

    #[test]
    fn scaled_symbols() {
        let mut a = Assumptions::new();
        a.assume_range("k", SymRange::constant(2, 5));
        // 3*k in [6,15]
        assert_eq!(
            a.prove_le(&Expr::int(6), &Expr::mul(Expr::int(3), Expr::sym("k"))),
            Proof::Proven
        );
        // -2*k in [-10,-4]
        assert_eq!(
            a.prove_le(&Expr::mul(Expr::int(-2), Expr::sym("k")), &Expr::int(-4)),
            Proof::Proven
        );
    }

    #[test]
    fn disjoint_ranges() {
        let mut a = Assumptions::new();
        a.assume_range("i", SymRange::constant(0, 10));
        // [i*8 : i*8+6] and [i*8+7 : i*8+13] are disjoint
        let r1 = SymRange::new(
            Expr::mul(Expr::sym("i"), Expr::int(8)),
            Expr::add(Expr::mul(Expr::sym("i"), Expr::int(8)), Expr::int(6)),
        );
        let r2 = SymRange::new(
            Expr::add(Expr::mul(Expr::sym("i"), Expr::int(8)), Expr::int(7)),
            Expr::add(Expr::mul(Expr::sym("i"), Expr::int(8)), Expr::int(13)),
        );
        assert_eq!(a.prove_disjoint(&r1, &r2), Proof::Proven);
        // overlapping constant ranges are disproven
        assert_eq!(
            a.prove_disjoint(&SymRange::constant(0, 5), &SymRange::constant(5, 9)),
            Proof::Disproven
        );
        // unknown when nothing is known about the bounds
        assert_eq!(
            a.prove_disjoint(
                &SymRange::exact(Expr::array_ref("p", Expr::sym("x"))),
                &SymRange::exact(Expr::array_ref("p", Expr::sym("y")))
            ),
            Proof::Unknown
        );
    }

    #[test]
    fn mod_bounds() {
        let a = Assumptions::new();
        // (x % 8) <= 7
        let e = Expr::modulo(Expr::sym("x"), Expr::int(8));
        assert_eq!(a.prove_le(&e, &Expr::int(7)), Proof::Proven);
        assert_eq!(a.prove_le(&Expr::int(-7), &e), Proof::Proven);
        // cannot prove nonneg without knowing the dividend's sign
        assert_eq!(a.prove_nonneg(&e), Proof::Unknown);
    }

    #[test]
    fn bottom_never_proves() {
        let a = Assumptions::new();
        assert_eq!(a.prove_le(&Expr::Bottom, &Expr::int(5)), Proof::Unknown);
        assert_eq!(a.prove_eq(&Expr::Bottom, &Expr::Bottom), Proof::Unknown);
    }
}
