//! Canonical simplification of symbolic expressions.
//!
//! The analysis constantly needs to answer questions such as "is
//! `rowptr[i] - rowptr[i-1]` equal to `rowsize[i-1]`?" or "is this difference
//! non-negative?".  Both reduce to bringing expressions into a canonical
//! *sum-of-products* form:
//!
//! ```text
//! c0 + c1·m1 + c2·m2 + …
//! ```
//!
//! where each `mk` is a sorted product of non-arithmetic atoms (symbols,
//! `λ`/`Λ` placeholders, array references, divisions, …).  Two expressions are
//! symbolically equal iff their canonical forms are identical.
//!
//! `⊥` (unknown) is absorbing: any expression containing `⊥` simplifies to
//! `⊥`, mirroring the paper's treatment of values the compiler cannot
//! represent.

use crate::expr::Expr;
use std::collections::BTreeMap;

/// Simplifies an expression into canonical sum-of-products form.
pub fn simplify(e: &Expr) -> Expr {
    if e.contains_bottom() {
        return Expr::Bottom;
    }
    let terms = collect_terms(e);
    rebuild(terms)
}

/// Simplifies `a - b`. Convenience wrapper used heavily by the relation and
/// dependence-test code.
pub fn simplify_diff(a: &Expr, b: &Expr) -> Expr {
    simplify(&Expr::sub(a.clone(), b.clone()))
}

/// Returns `true` if `a` and `b` are symbolically equal (identical canonical
/// forms). `⊥` is never equal to anything, including itself, because an
/// unknown value gives no guarantee.
pub fn sym_eq(a: &Expr, b: &Expr) -> bool {
    let (sa, sb) = (simplify(a), simplify(b));
    if sa == Expr::Bottom || sb == Expr::Bottom {
        return false;
    }
    sa == sb
}

/// A monomial: product of atoms (each atom canonically simplified), sorted.
type Monomial = Vec<Expr>;

/// Term collection: map monomial -> integer coefficient.
fn collect_terms(e: &Expr) -> BTreeMap<Monomial, i64> {
    let mut acc: BTreeMap<Monomial, i64> = BTreeMap::new();
    add_into(&mut acc, e, 1);
    acc.retain(|_, c| *c != 0);
    acc
}

fn add_into(acc: &mut BTreeMap<Monomial, i64>, e: &Expr, mult: i64) {
    match e {
        Expr::Int(v) => {
            *acc.entry(Vec::new()).or_insert(0) += mult.saturating_mul(*v);
        }
        Expr::Add(xs) => {
            for x in xs {
                add_into(acc, x, mult);
            }
        }
        Expr::Mul(xs) => {
            // Multiply the factors out only when at most one of them is an
            // Add; full distribution of products of sums can blow up, but in
            // the subscript expressions the analysis sees (affine forms such
            // as `(front[miel] - 1) * 7`) one sum times constants is the
            // common case and must be expanded for canonical comparison.
            let mut coeff: i64 = mult;
            let mut atoms: Vec<Expr> = Vec::new();
            let mut sums: Vec<&Expr> = Vec::new();
            for x in xs {
                let sx = simplify_node(x);
                match sx {
                    Expr::Int(v) => coeff = coeff.saturating_mul(v),
                    Expr::Add(_) => sums.push(x),
                    // Nested products flatten into this one.
                    Expr::Mul(inner) => {
                        for f in inner {
                            match f {
                                Expr::Int(v) => coeff = coeff.saturating_mul(v),
                                other => atoms.push(other),
                            }
                        }
                    }
                    other => atoms.push(other),
                }
            }
            if coeff == 0 {
                return;
            }
            if sums.is_empty() {
                atoms.sort();
                *acc.entry(atoms).or_insert(0) += coeff;
            } else if sums.len() == 1 && atoms.is_empty() {
                // coeff * (t1 + t2 + ...) -> distribute
                let inner = collect_terms(sums[0]);
                for (mono, c) in inner {
                    *acc.entry(mono).or_insert(0) += coeff.saturating_mul(c);
                }
            } else {
                // Too complex to distribute safely: keep as an opaque product
                // atom built from the simplified factors.
                let mut factors: Vec<Expr> = Vec::new();
                if coeff != 1 {
                    // fold the constant back in as part of the coefficient
                }
                for s in sums {
                    factors.push(simplify(s));
                }
                factors.extend(atoms);
                factors.sort();
                *acc.entry(factors).or_insert(0) += coeff;
            }
        }
        other => {
            let atom = simplify_node(other);
            match atom {
                Expr::Int(v) => {
                    *acc.entry(Vec::new()).or_insert(0) += mult.saturating_mul(v);
                }
                Expr::Add(_) | Expr::Mul(_) => {
                    // simplify_node may have rewritten the node into an
                    // arithmetic form (e.g. Min of equal entries); recurse.
                    add_into(acc, &atom, mult);
                }
                a => {
                    *acc.entry(vec![a]).or_insert(0) += mult;
                }
            }
        }
    }
}

/// Simplifies a single non-Add/Mul node (atoms with children get their
/// children canonicalized; foldable operations are folded).
fn simplify_node(e: &Expr) -> Expr {
    match e {
        Expr::Int(_) | Expr::Sym(_) | Expr::Lambda(_) | Expr::BigLambda(_) | Expr::Bottom => {
            e.clone()
        }
        Expr::Add(_) | Expr::Mul(_) => simplify(e),
        Expr::ArrayRef(a, idx) => Expr::ArrayRef(a.clone(), Box::new(simplify(idx))),
        Expr::Div(a, b) => {
            let (sa, sb) = (simplify(a), simplify(b));
            match (&sa, &sb) {
                (Expr::Int(x), Expr::Int(y)) if *y != 0 => Expr::Int(x / y),
                (_, Expr::Int(1)) => sa,
                (Expr::Int(0), _) => Expr::Int(0),
                _ => Expr::Div(Box::new(sa), Box::new(sb)),
            }
        }
        Expr::Mod(a, b) => {
            let (sa, sb) = (simplify(a), simplify(b));
            match (&sa, &sb) {
                (Expr::Int(x), Expr::Int(y)) if *y != 0 => Expr::Int(x % y),
                (_, Expr::Int(1)) => Expr::Int(0),
                (Expr::Int(0), _) => Expr::Int(0),
                _ => Expr::Mod(Box::new(sa), Box::new(sb)),
            }
        }
        Expr::Min(xs) => fold_min_max(xs, true),
        Expr::Max(xs) => fold_min_max(xs, false),
    }
}

fn fold_min_max(xs: &[Expr], is_min: bool) -> Expr {
    let mut simplified: Vec<Expr> = xs.iter().map(simplify).collect();
    simplified.sort();
    simplified.dedup();
    // Fold all constant entries into one.
    let mut consts: Vec<i64> = Vec::new();
    let mut rest: Vec<Expr> = Vec::new();
    for s in simplified {
        match s {
            Expr::Int(v) => consts.push(v),
            other => rest.push(other),
        }
    }
    if !consts.is_empty() {
        let folded = if is_min {
            *consts.iter().min().unwrap()
        } else {
            *consts.iter().max().unwrap()
        };
        rest.push(Expr::Int(folded));
        rest.sort();
    }
    if rest.len() == 1 {
        return rest.pop().unwrap();
    }
    if is_min {
        Expr::Min(rest)
    } else {
        Expr::Max(rest)
    }
}

/// Rebuilds a canonical expression from collected terms.
fn rebuild(terms: BTreeMap<Monomial, i64>) -> Expr {
    if terms.is_empty() {
        return Expr::Int(0);
    }
    let mut parts: Vec<Expr> = Vec::new();
    for (mono, coeff) in terms {
        if coeff == 0 {
            continue;
        }
        if mono.is_empty() {
            parts.push(Expr::Int(coeff));
        } else if mono.len() == 1 && coeff == 1 {
            parts.push(mono.into_iter().next().unwrap());
        } else {
            let mut factors = Vec::new();
            if coeff != 1 {
                factors.push(Expr::Int(coeff));
            }
            factors.extend(mono);
            if factors.len() == 1 {
                parts.push(factors.pop().unwrap());
            } else {
                parts.push(Expr::Mul(factors));
            }
        }
    }
    match parts.len() {
        0 => Expr::Int(0),
        1 => parts.pop().unwrap(),
        _ => Expr::Add(parts),
    }
}

/// Returns `Some(constant)` if the expression simplifies to an integer.
pub fn const_value(e: &Expr) -> Option<i64> {
    simplify(e).as_int()
}

/// Splits a simplified expression into `(constant, non-constant remainder)`,
/// i.e. `e = constant + remainder`.  Useful for recognizing `λ + k`
/// recurrences and `i + k` subscripts.
pub fn split_constant(e: &Expr) -> (i64, Expr) {
    let s = simplify(e);
    match s {
        Expr::Int(v) => (v, Expr::Int(0)),
        Expr::Add(xs) => {
            let mut k = 0;
            let mut rest = Vec::new();
            for x in xs {
                match x {
                    Expr::Int(v) => k += v,
                    other => rest.push(other),
                }
            }
            (k, rebuild_parts(rest))
        }
        other => (0, other),
    }
}

fn rebuild_parts(mut parts: Vec<Expr>) -> Expr {
    match parts.len() {
        0 => Expr::Int(0),
        1 => parts.pop().unwrap(),
        _ => Expr::Add(parts),
    }
}

/// If the expression has the affine form `coeff * sym + offset` in the given
/// symbol (with everything else constant-free in `sym`), returns
/// `(coeff, offset)`.  This is how the analysis recognizes "simple
/// subscripts" `i + k` and strided expressions such as `7*index + c`.
pub fn affine_in(e: &Expr, sym: &str) -> Option<(i64, Expr)> {
    let s = simplify(e);
    let terms = collect_terms(&s);
    let mut coeff: i64 = 0;
    let mut offset: BTreeMap<Monomial, i64> = BTreeMap::new();
    for (mono, c) in terms {
        let mentions: usize = mono.iter().filter(|a| a.contains_sym(sym)).count();
        if mentions == 0 {
            offset.insert(mono, c);
        } else if mentions == 1 && mono.len() == 1 && mono[0] == Expr::Sym(sym.to_string()) {
            coeff += c;
        } else {
            // Non-linear or nested occurrence (e.g. a[i], i*i): not affine.
            return None;
        }
    }
    Some((coeff, rebuild(offset)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(e: Expr) -> Expr {
        simplify(&e)
    }

    #[test]
    fn constant_folding() {
        assert_eq!(s(Expr::add(Expr::int(2), Expr::int(3))), Expr::Int(5));
        assert_eq!(s(Expr::mul(Expr::int(4), Expr::int(-2))), Expr::Int(-8));
        assert_eq!(s(Expr::sub(Expr::int(7), Expr::int(7))), Expr::Int(0));
        assert_eq!(s(Expr::div(Expr::int(7), Expr::int(2))), Expr::Int(3));
        assert_eq!(s(Expr::div(Expr::int(-7), Expr::int(2))), Expr::Int(-3));
        assert_eq!(s(Expr::modulo(Expr::int(7), Expr::int(8))), Expr::Int(7));
    }

    #[test]
    fn like_terms_collapse() {
        // i + i -> 2*i
        let e = s(Expr::add(Expr::sym("i"), Expr::sym("i")));
        assert_eq!(e, Expr::Mul(vec![Expr::Int(2), Expr::Sym("i".into())]));
        // i - i -> 0
        assert_eq!(s(Expr::sub(Expr::sym("i"), Expr::sym("i"))), Expr::Int(0));
        // 3*i + 2 - i -> 2*i + 2
        let e = s(Expr::add(
            Expr::sub(Expr::mul(Expr::int(3), Expr::sym("i")), Expr::sym("i")),
            Expr::int(2),
        ));
        assert_eq!(
            e,
            Expr::Add(vec![
                Expr::Int(2),
                Expr::Mul(vec![Expr::Int(2), Expr::Sym("i".into())])
            ])
        );
    }

    #[test]
    fn distribution_of_constant_times_sum() {
        // (front - 1) * 7 -> 7*front - 7
        let e = s(Expr::mul(
            Expr::sub(Expr::sym("front"), Expr::int(1)),
            Expr::int(7),
        ));
        assert_eq!(
            e,
            Expr::Add(vec![
                Expr::Int(-7),
                Expr::Mul(vec![Expr::Int(7), Expr::Sym("front".into())])
            ])
        );
    }

    #[test]
    fn bottom_is_absorbing() {
        assert_eq!(s(Expr::add(Expr::Bottom, Expr::int(1))), Expr::Bottom);
        assert_eq!(s(Expr::mul(Expr::Bottom, Expr::int(0))), Expr::Bottom);
        assert!(!sym_eq(&Expr::Bottom, &Expr::Bottom));
    }

    #[test]
    fn array_refs_are_atoms_with_simplified_indices() {
        // rowptr[i + 0] == rowptr[i]
        let a = Expr::array_ref("rowptr", Expr::add(Expr::sym("i"), Expr::int(0)));
        let b = Expr::array_ref("rowptr", Expr::sym("i"));
        assert!(sym_eq(&a, &b));
        // rowptr[i] - rowptr[i-1] does not cancel
        let d = simplify_diff(
            &Expr::array_ref("rowptr", Expr::sym("i")),
            &Expr::array_ref("rowptr", Expr::sub(Expr::sym("i"), Expr::int(1))),
        );
        assert_ne!(d, Expr::Int(0));
        // but rowptr[i] - rowptr[i] does
        let d = simplify_diff(
            &Expr::array_ref("rowptr", Expr::sym("i")),
            &Expr::array_ref("rowptr", Expr::add(Expr::sym("i"), Expr::int(0))),
        );
        assert_eq!(d, Expr::Int(0));
    }

    #[test]
    fn sym_eq_examples_from_paper() {
        // λ(count) + 1 + 1  ==  λ(count) + 2
        let a = Expr::add(Expr::add(Expr::lambda("count"), Expr::int(1)), Expr::int(1));
        let b = Expr::add(Expr::lambda("count"), Expr::int(2));
        assert!(sym_eq(&a, &b));
        // miel + (front[miel]-1)*7  ==  7*front[miel] + miel - 7
        let lhs = Expr::add(
            Expr::sym("miel"),
            Expr::mul(
                Expr::sub(Expr::array_ref("front", Expr::sym("miel")), Expr::int(1)),
                Expr::int(7),
            ),
        );
        let rhs = Expr::add(
            Expr::sub(
                Expr::mul(Expr::int(7), Expr::array_ref("front", Expr::sym("miel"))),
                Expr::int(7),
            ),
            Expr::sym("miel"),
        );
        assert!(sym_eq(&lhs, &rhs));
    }

    #[test]
    fn min_max_folding() {
        assert_eq!(s(Expr::min(Expr::int(3), Expr::int(5))), Expr::Int(3));
        assert_eq!(s(Expr::max(Expr::int(3), Expr::int(5))), Expr::Int(5));
        assert_eq!(s(Expr::min(Expr::sym("n"), Expr::sym("n"))), Expr::sym("n"));
        // min(n, 3, 5) -> min(3, n)
        let e = s(Expr::Min(vec![Expr::sym("n"), Expr::int(3), Expr::int(5)]));
        assert_eq!(e, Expr::Min(vec![Expr::Int(3), Expr::sym("n")]));
    }

    #[test]
    fn div_mod_identities() {
        assert_eq!(s(Expr::div(Expr::sym("x"), Expr::int(1))), Expr::sym("x"));
        assert_eq!(s(Expr::modulo(Expr::sym("x"), Expr::int(1))), Expr::Int(0));
        assert_eq!(s(Expr::div(Expr::int(0), Expr::sym("x"))), Expr::Int(0));
        // division by zero is left symbolic, never panics
        let e = s(Expr::div(Expr::int(4), Expr::int(0)));
        assert_eq!(e, Expr::Div(Box::new(Expr::Int(4)), Box::new(Expr::Int(0))));
    }

    #[test]
    fn split_constant_works() {
        let (k, rest) = split_constant(&Expr::add(Expr::sym("i"), Expr::int(3)));
        assert_eq!(k, 3);
        assert_eq!(rest, Expr::sym("i"));
        let (k, rest) = split_constant(&Expr::int(-2));
        assert_eq!(k, -2);
        assert_eq!(rest, Expr::Int(0));
    }

    #[test]
    fn affine_recognition() {
        // i + 4 is affine in i with coeff 1
        assert_eq!(
            affine_in(&Expr::add(Expr::sym("i"), Expr::int(4)), "i"),
            Some((1, Expr::Int(4)))
        );
        // 7*index + nelttemp - 7 is affine in index
        let e = Expr::add(
            Expr::mul(Expr::int(7), Expr::sym("index")),
            Expr::sub(Expr::sym("nelttemp"), Expr::int(7)),
        );
        let (c, off) = affine_in(&e, "index").unwrap();
        assert_eq!(c, 7);
        assert!(sym_eq(
            &off,
            &Expr::sub(Expr::sym("nelttemp"), Expr::int(7))
        ));
        // i*i is not affine in i
        assert_eq!(
            affine_in(&Expr::mul(Expr::sym("i"), Expr::sym("i")), "i"),
            None
        );
        // a[i] + i is not affine in i (nested occurrence)
        assert_eq!(
            affine_in(
                &Expr::add(Expr::array_ref("a", Expr::sym("i")), Expr::sym("i")),
                "i"
            ),
            None
        );
        // n (no i at all) is affine with coeff 0
        assert_eq!(affine_in(&Expr::sym("n"), "i"), Some((0, Expr::sym("n"))));
    }

    #[test]
    fn nested_sums_flatten() {
        let e = s(Expr::Add(vec![
            Expr::Add(vec![Expr::sym("a"), Expr::sym("b")]),
            Expr::Add(vec![Expr::sym("c"), Expr::Int(1)]),
            Expr::Int(2),
        ]));
        assert_eq!(
            e,
            Expr::Add(vec![
                Expr::Int(3),
                Expr::Sym("a".into()),
                Expr::Sym("b".into()),
                Expr::Sym("c".into()),
            ])
        );
    }
}
