//! Runtime parallelization baselines: inspector/executor schemes and an
//! LRPD-style speculative test.
//!
//! The paper's central claim is that the properties enabling parallelization
//! of subscripted-subscript loops (monotonicity, injectivity, …) can be
//! derived *at compile time* from the code that fills the index arrays, so
//! that no run-time machinery is needed.  Its related-work section contrasts
//! this with the long line of run-time techniques — inspector/executor
//! schemes (Saltz et al.; Mohammadi et al.; Venkat et al.) and speculative
//! run-time dependence testing (the LRPD test of Rauchwerger and Padua) —
//! whose "Achilles' heel is the significant overhead of the inserted
//! inspection and decision code".
//!
//! This crate implements those baselines so the claim can be measured rather
//! than asserted:
//!
//! * [`inspect`] — runtime *inspectors* that scan an index array before the
//!   loop runs and decide which of the Section 2 properties hold for this
//!   particular input (monotonicity, injectivity, injective subsets,
//!   conflict-freedom of a write-index set).  Inspection itself can be run
//!   in parallel, as production inspector/executor systems do.
//! * [`lrpd`] — a shadow-array LRPD-style test: the loop is executed
//!   speculatively in parallel while shadow state records which iterations
//!   touched which elements; if a cross-iteration conflict is detected the
//!   speculative result is discarded and the loop is re-executed serially.
//! * [`levelset`] — the inspector as a *scheduler*: per-iteration
//!   read/write address sets become dependence level sets, so a carried
//!   loop (SpTRSV, Gauss-Seidel) runs as a sequence of parallel
//!   wavefronts instead of conceding to serial execution.
//! * [`executor`] — drivers that combine an inspector with a parallel or
//!   serial executor for the two loop shapes the paper evaluates
//!   (range-partitioned loops such as Figure 9's product loop, and indirect
//!   scatter loops such as Figure 2's `id_to_mt[mt_to_id[i]] = i`), and
//!   report a per-invocation timing breakdown of inspection vs. execution.
//!
//! The ablation benchmark `inspector_overhead` (crate `ss-bench`) uses these
//! drivers to compare the compile-time approach (zero run-time analysis
//! cost) against the inspector/executor and speculative baselines on the
//! same kernels and inputs.
//!
//! ```
//! use ss_inspector::inspect::{inspect_index_array, InspectorConfig};
//! use ss_properties::ArrayProperty;
//!
//! let rowptr = vec![0i64, 3, 3, 7, 12];
//! let report = inspect_index_array(&rowptr, &InspectorConfig::serial());
//! assert!(report.properties.has(ArrayProperty::MonotonicInc));
//! assert!(!report.properties.has(ArrayProperty::Injective));
//! ```

#![warn(missing_docs)]

pub mod executor;
pub mod inspect;
pub mod levelset;
pub mod lrpd;

pub use executor::{
    run_indirect_scatter, run_range_partitioned, ExecutionProfile, ExecutionStrategy,
};
pub use inspect::{inspect_index_array, InspectionReport, InspectorConfig};
pub use levelset::{build_level_sets, levelset_build_count, IterationAccess, LevelSchedule};
pub use lrpd::{lrpd_scatter, LrpdOutcome};
