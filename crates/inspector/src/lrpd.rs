//! An LRPD-style speculative run-time test for scatter loops.
//!
//! The LRPD test (Rauchwerger & Padua) executes a candidate loop in parallel
//! *speculatively* while shadow state records, per element of the written
//! array, which iterations touched it.  After the speculative run the shadow
//! state is analyzed: if any element was written by more than one iteration
//! the speculation failed (a cross-iteration output dependence exists), the
//! speculative result is discarded and the loop is re-executed serially.
//!
//! This module implements the output-dependence portion of the test for the
//! loop shape the paper's Figure 2/5 kernels have:
//!
//! ```text
//! for (i = 0; i < n; i++)
//!     if (guard(i)) target[index[i]] = value(i);
//! ```
//!
//! which is exactly the case where the compile-time analysis instead proves
//! injectivity of `index` (or of its guarded subset) from the filling code.
//! The point of carrying the speculative baseline is the cost model: LRPD
//! pays for shadow marking and a privatized speculation buffer on *every*
//! invocation, and pays double (speculative run + serial re-run) when
//! speculation fails, whereas the compile-time result is free at run time.

use ss_runtime::{chunk_ranges, time_it};
use std::sync::atomic::{AtomicI64, AtomicU32, Ordering};

/// The result of one speculative execution.
#[derive(Debug, Clone)]
pub struct LrpdOutcome {
    /// Whether the speculative parallel execution was valid (no element
    /// written by two different iterations).
    pub speculation_succeeded: bool,
    /// Number of elements of the target that were written by more than one
    /// iteration (0 when speculation succeeded).
    pub conflicting_elements: usize,
    /// Seconds spent in the speculative parallel attempt, including shadow
    /// marking and the privatized speculation buffer.
    pub speculative_seconds: f64,
    /// Seconds spent analyzing the shadow array and, on success, committing
    /// the speculative buffer into the target.
    pub analysis_seconds: f64,
    /// Seconds spent re-executing serially (0.0 when speculation succeeded).
    pub reexecution_seconds: f64,
}

impl LrpdOutcome {
    /// Total run-time cost of obtaining a correct result via LRPD.
    pub fn total_seconds(&self) -> f64 {
        self.speculative_seconds + self.analysis_seconds + self.reexecution_seconds
    }
}

/// Executes `target[index[i]] = value(i)` for all `i` with `guard(i)`,
/// speculatively in parallel, falling back to serial re-execution when the
/// speculation fails.  On return `target` always holds the correct (serial
/// semantics) result.
///
/// `index[i]` values must be in `0..target.len()` for guarded iterations;
/// out-of-range subscripts are a bug in the caller's kernel, not a
/// dependence, and cause a panic just as the serial loop would.
#[allow(clippy::needless_range_loop)] // the serial re-execution mirrors the C loop
pub fn lrpd_scatter<V, G>(
    target: &mut [i64],
    index: &[i64],
    value: V,
    guard: G,
    threads: usize,
) -> LrpdOutcome
where
    V: Fn(usize) -> i64 + Sync,
    G: Fn(usize) -> bool + Sync,
{
    let n = index.len();
    let threads = threads.max(1);

    // Shadow array (write counts per element) and the privatized speculation
    // buffer the parallel run scatters into.  Both are per-invocation
    // allocations — part of the overhead the compile-time approach avoids.
    let shadow: Vec<AtomicU32> = (0..target.len()).map(|_| AtomicU32::new(0)).collect();
    let speculative: Vec<AtomicI64> = target.iter().map(|&v| AtomicI64::new(v)).collect();

    let (_, speculative_seconds) = time_it(|| {
        let ranges = chunk_ranges(n, threads);
        crossbeam::thread::scope(|scope| {
            for r in ranges {
                let shadow = &shadow;
                let speculative = &speculative;
                let value = &value;
                let guard = &guard;
                scope.spawn(move |_| {
                    for i in r {
                        if !guard(i) {
                            continue;
                        }
                        let slot = usize::try_from(index[i]).expect("negative subscript");
                        shadow[slot].fetch_add(1, Ordering::Relaxed);
                        speculative[slot].store(value(i), Ordering::Relaxed);
                    }
                });
            }
        })
        .expect("speculative worker panicked");
    });

    let (conflicting_elements, analysis_seconds) = time_it(|| {
        let conflicts = shadow
            .iter()
            .filter(|c| c.load(Ordering::Relaxed) > 1)
            .count();
        if conflicts == 0 {
            // Commit: the speculative buffer is the loop's result.
            for (t, s) in target.iter_mut().zip(&speculative) {
                *t = s.load(Ordering::Relaxed);
            }
        }
        conflicts
    });

    if conflicting_elements == 0 {
        return LrpdOutcome {
            speculation_succeeded: true,
            conflicting_elements: 0,
            speculative_seconds,
            analysis_seconds,
            reexecution_seconds: 0.0,
        };
    }

    // Speculation failed: the target was never modified (all speculative
    // writes went to the privatized buffer), so the serial re-execution runs
    // directly on it with the loop's sequential semantics (last write wins).
    let (_, reexecution_seconds) = time_it(|| {
        for i in 0..n {
            if guard(i) {
                let slot = usize::try_from(index[i]).expect("negative subscript");
                target[slot] = value(i);
            }
        }
    });
    LrpdOutcome {
        speculation_succeeded: false,
        conflicting_elements,
        speculative_seconds,
        analysis_seconds,
        reexecution_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn serial_reference(
        target: &[i64],
        index: &[i64],
        value: impl Fn(usize) -> i64,
        guard: impl Fn(usize) -> bool,
    ) -> Vec<i64> {
        let mut out = target.to_vec();
        for i in 0..index.len() {
            if guard(i) {
                out[index[i] as usize] = value(i);
            }
        }
        out
    }

    #[test]
    fn speculation_succeeds_on_injective_index() {
        let n = 10_000usize;
        let mut perm: Vec<i64> = (0..n as i64).collect();
        perm.shuffle(&mut StdRng::seed_from_u64(7));
        let mut target = vec![-1i64; n];
        let expect = serial_reference(&target, &perm, |i| i as i64, |_| true);
        let outcome = lrpd_scatter(&mut target, &perm, |i| i as i64, |_| true, 4);
        assert!(outcome.speculation_succeeded);
        assert_eq!(outcome.conflicting_elements, 0);
        assert_eq!(outcome.reexecution_seconds, 0.0);
        assert_eq!(target, expect);
    }

    #[test]
    fn speculation_fails_and_recovers_on_duplicate_subscripts() {
        let n = 5_000usize;
        let mut rng = StdRng::seed_from_u64(11);
        // Many duplicates: a histogram-style index.
        let index: Vec<i64> = (0..n).map(|_| rng.gen_range(0..64)).collect();
        let mut target = vec![0i64; 64];
        let expect = serial_reference(&target, &index, |i| i as i64, |_| true);
        let outcome = lrpd_scatter(&mut target, &index, |i| i as i64, |_| true, 4);
        assert!(!outcome.speculation_succeeded);
        assert!(outcome.conflicting_elements > 0);
        assert!(outcome.total_seconds() >= outcome.reexecution_seconds);
        assert_eq!(
            target, expect,
            "serial re-execution must restore sequential semantics"
        );
    }

    #[test]
    fn guarded_iterations_are_skipped() {
        // Figure 5 shape: only non-negative jmatch entries write, and those
        // form an injective subset.
        let jmatch = vec![2i64, -1, 0, -1, 5, 1, -1, 4, 3];
        let index: Vec<i64> = jmatch.iter().map(|&v| v.max(0)).collect();
        let mut imatch = vec![-1i64; jmatch.len()];
        let expect = serial_reference(&imatch, &index, |i| i as i64, |i| jmatch[i] >= 0);
        let outcome = lrpd_scatter(&mut imatch, &index, |i| i as i64, |i| jmatch[i] >= 0, 3);
        assert!(outcome.speculation_succeeded);
        assert_eq!(imatch, expect);
        // Unwritten elements keep their original value.
        assert_eq!(imatch[6], -1);
    }

    #[test]
    fn single_thread_still_detects_the_dependence() {
        let index = vec![3i64, 1, 3, 0];
        let mut target = vec![9i64; 4];
        let expect = serial_reference(&target, &index, |i| 100 + i as i64, |_| true);
        let outcome = lrpd_scatter(&mut target, &index, |i| 100 + i as i64, |_| true, 1);
        // Element 3 is written twice -> speculation is reported failed even
        // on one thread (the test is about the dependence, not the schedule).
        assert!(!outcome.speculation_succeeded);
        assert_eq!(target, expect);
    }

    #[test]
    fn empty_loop_is_a_successful_speculation() {
        let mut target = vec![1i64, 2, 3];
        let outcome = lrpd_scatter(&mut target, &[], |_| 0, |_| true, 4);
        assert!(outcome.speculation_succeeded);
        assert_eq!(target, vec![1, 2, 3]);
    }

    #[test]
    fn randomized_inputs_always_match_serial_semantics() {
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..20 {
            let n = rng.gen_range(1..400);
            let m = rng.gen_range(1..200);
            let index: Vec<i64> = (0..n).map(|_| rng.gen_range(0..m) as i64).collect();
            let mut target: Vec<i64> = (0..m).map(|_| rng.gen_range(-50..50)).collect();
            let expect = serial_reference(&target, &index, |i| i as i64 * 3, |i| i % 3 != 0);
            let threads = rng.gen_range(1..6);
            lrpd_scatter(
                &mut target,
                &index,
                |i| i as i64 * 3,
                |i| i % 3 != 0,
                threads,
            );
            assert_eq!(
                target, expect,
                "trial {trial} diverged from serial semantics"
            );
        }
    }
}
