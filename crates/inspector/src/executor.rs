//! Inspector/executor drivers for the two loop shapes the paper evaluates.
//!
//! An inspector/executor scheme wraps a candidate loop in run-time machinery:
//! on every invocation the *inspector* scans the index arrays and decides
//! whether this input allows parallel execution, and the *executor* then
//! runs the loop either in parallel or serially.  The decision is always
//! correct for the given input, but its cost recurs on every invocation.
//!
//! The compile-time approach of the paper makes the same decision once, at
//! compilation, from the code that fills the index arrays; at run time the
//! parallel loop simply runs.  The [`ExecutionProfile`] returned by the
//! drivers here records the inspection and execution times separately so the
//! ablation benchmark can chart exactly how much of each invocation the
//! inspector consumes.
//!
//! Two drivers are provided:
//!
//! * [`run_range_partitioned`] — the Figure 9 / Figure 3 shape: an outer
//!   loop over `i` whose body touches `data[bounds[i] .. bounds[i+1]]`.  The
//!   inspector checks monotonicity of `bounds`; the executor partitions the
//!   outer loop.
//! * [`run_indirect_scatter`] — the Figure 2 / Figure 5 shape:
//!   `target[index[i]] = value(i)` under an optional guard.  The inspector
//!   checks injectivity of the (guarded) write-index set; the executor
//!   scatters in parallel.

use crate::inspect::{inspect_index_array, inspect_write_conflicts, InspectorConfig};
use ss_properties::ArrayProperty;
use ss_runtime::{parallel_for, time_it};
use std::sync::atomic::{AtomicI64, Ordering};

/// How the executor ended up running the loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionStrategy {
    /// The inspector licensed parallel execution.
    Parallel,
    /// The inspector found the enabling property violated; the loop ran
    /// serially.
    Serial,
    /// No inspection was performed (compile-time mode): the caller asserted
    /// the property, so the loop ran parallel with zero run-time analysis.
    CompileTimeParallel,
}

/// Per-invocation cost breakdown of an inspector/executor run.
#[derive(Debug, Clone)]
pub struct ExecutionProfile {
    /// How the loop was executed.
    pub strategy: ExecutionStrategy,
    /// Seconds the inspector spent scanning index arrays (0.0 in
    /// compile-time mode).
    pub inspection_seconds: f64,
    /// Seconds the executor spent running the loop body.
    pub execution_seconds: f64,
}

impl ExecutionProfile {
    /// Total run-time cost of the invocation.
    pub fn total_seconds(&self) -> f64 {
        self.inspection_seconds + self.execution_seconds
    }

    /// Fraction of the invocation spent inspecting (0.0 in compile-time
    /// mode; meaningless when the total rounds to zero).
    pub fn inspection_fraction(&self) -> f64 {
        let total = self.total_seconds();
        if total > 0.0 {
            self.inspection_seconds / total
        } else {
            0.0
        }
    }
}

/// Runs the Figure 9 shape
///
/// ```text
/// for (i = 0; i < nrows; i++)
///     for (j = bounds[i]; j < bounds[i+1]; j++)
///         data[j] = row_body(i, j);
/// ```
///
/// under one of three regimes selected by `mode`:
///
/// * [`Mode::InspectorExecutor`] — inspect `bounds` for monotonicity on this
///   invocation, then run parallel (outer loop partitioned over threads) or
///   serial accordingly.
/// * [`Mode::CompileTime`] — skip inspection; the compile-time analysis
///   already proved `bounds` monotonic, so run parallel immediately.
/// * [`Mode::Serial`] — always serial (the "current compilers" baseline).
pub fn run_range_partitioned<F>(
    data: &mut [f64],
    bounds: &[i64],
    row_body: F,
    threads: usize,
    mode: Mode,
) -> ExecutionProfile
where
    F: Fn(usize, usize) -> f64 + Sync,
{
    let nrows = bounds.len().saturating_sub(1);
    let (licensed, inspection_seconds) = match mode {
        Mode::CompileTime => (true, 0.0),
        Mode::Serial => (false, 0.0),
        Mode::InspectorExecutor => {
            let report = inspect_index_array(bounds, &InspectorConfig::monotonicity_only());
            (
                report.properties.has(ArrayProperty::MonotonicInc),
                report.seconds,
            )
        }
    };

    let data_len = data.len();
    let row_range = |i: usize| -> std::ops::Range<usize> {
        let lo = bounds[i].clamp(0, data_len as i64) as usize;
        let hi = bounds[i + 1].clamp(0, data_len as i64) as usize;
        lo..hi.max(lo)
    };

    let (_, execution_seconds) = if licensed && threads > 1 {
        // Parallel executor: the monotonicity of `bounds` means row ranges
        // are non-overlapping, so rows can be assigned to threads freely.
        // Each thread works on its own rows through an atomic view of the
        // data (the ranges are disjoint, so relaxed stores suffice).
        let cells: Vec<AtomicI64> = data
            .iter()
            .map(|&v| AtomicI64::new(v.to_bits() as i64))
            .collect();
        let out = time_it(|| {
            parallel_for(threads, nrows, |rows| {
                for i in rows {
                    for j in row_range(i) {
                        cells[j].store(row_body(i, j).to_bits() as i64, Ordering::Relaxed);
                    }
                }
            });
        });
        for (d, c) in data.iter_mut().zip(&cells) {
            *d = f64::from_bits(c.load(Ordering::Relaxed) as u64);
        }
        out
    } else {
        time_it(|| {
            for i in 0..nrows {
                for j in row_range(i) {
                    data[j] = row_body(i, j);
                }
            }
        })
    };

    ExecutionProfile {
        strategy: match (mode, licensed) {
            (Mode::CompileTime, _) => ExecutionStrategy::CompileTimeParallel,
            (_, true) => ExecutionStrategy::Parallel,
            (_, false) => ExecutionStrategy::Serial,
        },
        inspection_seconds,
        execution_seconds,
    }
}

/// Runs the Figure 2 / Figure 5 shape
///
/// ```text
/// for (i = 0; i < n; i++)
///     if (guard(i)) target[index[i]] = value(i);
/// ```
///
/// under the selected `mode`.  In inspector/executor mode the inspector
/// checks that the guarded write-index set is conflict-free (injective);
/// in compile-time mode that fact is assumed proven and the loop scatters in
/// parallel immediately.
#[allow(clippy::needless_range_loop)] // the serial fallback mirrors the C loop
pub fn run_indirect_scatter<V, G>(
    target: &mut [i64],
    index: &[i64],
    value: V,
    guard: G,
    threads: usize,
    mode: Mode,
) -> ExecutionProfile
where
    V: Fn(usize) -> i64 + Sync,
    G: Fn(usize) -> bool + Sync,
{
    let n = index.len();
    let (licensed, inspection_seconds) = match mode {
        Mode::CompileTime => (true, 0.0),
        Mode::Serial => (false, 0.0),
        Mode::InspectorExecutor => {
            let report = inspect_write_conflicts(index, &guard);
            (
                report.properties.has(ArrayProperty::Injective),
                report.seconds,
            )
        }
    };

    let (_, execution_seconds) = if licensed && threads > 1 {
        let cells: Vec<AtomicI64> = target.iter().map(|&v| AtomicI64::new(v)).collect();
        let out = time_it(|| {
            parallel_for(threads, n, |iters| {
                for i in iters {
                    if guard(i) {
                        let slot = usize::try_from(index[i]).expect("negative subscript");
                        cells[slot].store(value(i), Ordering::Relaxed);
                    }
                }
            });
        });
        for (t, c) in target.iter_mut().zip(&cells) {
            *t = c.load(Ordering::Relaxed);
        }
        out
    } else {
        time_it(|| {
            for i in 0..n {
                if guard(i) {
                    let slot = usize::try_from(index[i]).expect("negative subscript");
                    target[slot] = value(i);
                }
            }
        })
    };

    ExecutionProfile {
        strategy: match (mode, licensed) {
            (Mode::CompileTime, _) => ExecutionStrategy::CompileTimeParallel,
            (_, true) => ExecutionStrategy::Parallel,
            (_, false) => ExecutionStrategy::Serial,
        },
        inspection_seconds,
        execution_seconds,
    }
}

/// Which regime a driver runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Inspect on this invocation, then execute accordingly.
    InspectorExecutor,
    /// The property was proven at compile time; execute in parallel with no
    /// run-time analysis.
    CompileTime,
    /// Always execute serially (what a conventional compiler emits for these
    /// loops today).
    Serial,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn csr_bounds(nrows: usize, per_row: usize) -> Vec<i64> {
        (0..=nrows).map(|i| (i * per_row) as i64).collect()
    }

    #[test]
    fn range_partitioned_modes_agree_on_monotonic_bounds() {
        let nrows = 200;
        let per_row = 17;
        let bounds = csr_bounds(nrows, per_row);
        let n = nrows * per_row;
        let body = |i: usize, j: usize| (i * 1000 + j) as f64;

        let mut serial = vec![0.0; n];
        let p_serial = run_range_partitioned(&mut serial, &bounds, body, 4, Mode::Serial);
        assert_eq!(p_serial.strategy, ExecutionStrategy::Serial);

        let mut inspected = vec![0.0; n];
        let p_insp =
            run_range_partitioned(&mut inspected, &bounds, body, 4, Mode::InspectorExecutor);
        assert_eq!(p_insp.strategy, ExecutionStrategy::Parallel);
        assert!(p_insp.inspection_seconds > 0.0);

        let mut compiled = vec![0.0; n];
        let p_ct = run_range_partitioned(&mut compiled, &bounds, body, 4, Mode::CompileTime);
        assert_eq!(p_ct.strategy, ExecutionStrategy::CompileTimeParallel);
        assert_eq!(p_ct.inspection_seconds, 0.0);

        assert_eq!(serial, inspected);
        assert_eq!(serial, compiled);
    }

    #[test]
    fn inspector_refuses_non_monotonic_bounds() {
        // A corrupted rowptr: ranges overlap, so the inspector must fall
        // back to serial execution (and still produce the serial result).
        let bounds = vec![0i64, 10, 5, 20];
        let mut data = vec![0.0; 20];
        let profile = run_range_partitioned(
            &mut data,
            &bounds,
            |i, j| (i + j) as f64,
            4,
            Mode::InspectorExecutor,
        );
        assert_eq!(profile.strategy, ExecutionStrategy::Serial);
        let mut reference = vec![0.0; 20];
        run_range_partitioned(
            &mut reference,
            &bounds,
            |i, j| (i + j) as f64,
            1,
            Mode::Serial,
        );
        assert_eq!(data, reference);
    }

    #[test]
    fn indirect_scatter_modes_agree_on_injective_index() {
        let n = 5_000usize;
        let mut perm: Vec<i64> = (0..n as i64).collect();
        perm.shuffle(&mut StdRng::seed_from_u64(3));
        let value = |i: usize| i as i64;

        let mut serial = vec![-1i64; n];
        run_indirect_scatter(&mut serial, &perm, value, |_| true, 4, Mode::Serial);

        let mut inspected = vec![-1i64; n];
        let p = run_indirect_scatter(
            &mut inspected,
            &perm,
            value,
            |_| true,
            4,
            Mode::InspectorExecutor,
        );
        assert_eq!(p.strategy, ExecutionStrategy::Parallel);

        let mut compiled = vec![-1i64; n];
        let p = run_indirect_scatter(&mut compiled, &perm, value, |_| true, 4, Mode::CompileTime);
        assert_eq!(p.strategy, ExecutionStrategy::CompileTimeParallel);
        assert_eq!(p.inspection_seconds, 0.0);

        assert_eq!(serial, inspected);
        assert_eq!(serial, compiled);
    }

    #[test]
    fn inspector_refuses_conflicting_scatter() {
        let index = vec![0i64, 1, 1, 2];
        let mut target = vec![0i64; 3];
        let p = run_indirect_scatter(
            &mut target,
            &index,
            |i| i as i64 + 10,
            |_| true,
            4,
            Mode::InspectorExecutor,
        );
        assert_eq!(p.strategy, ExecutionStrategy::Serial);
        // Serial semantics: last write to element 1 wins.
        assert_eq!(target, vec![10, 12, 13]);
    }

    #[test]
    fn guarded_scatter_uses_the_injective_subset() {
        // Figure 5: duplicates exist in `index` but only on iterations the
        // guard excludes, so the inspector still licenses parallel
        // execution.
        let jmatch = vec![2i64, -1, 0, -1, 5, 1, -1, 4, 3];
        let index: Vec<i64> = jmatch.iter().map(|&v| v.max(0)).collect();
        let mut imatch = vec![-1i64; jmatch.len()];
        let p = run_indirect_scatter(
            &mut imatch,
            &index,
            |i| i as i64,
            |i| jmatch[i] >= 0,
            3,
            Mode::InspectorExecutor,
        );
        assert_eq!(p.strategy, ExecutionStrategy::Parallel);
        assert_eq!(imatch[0], 2); // jmatch[2] = 0 -> imatch[0] written by i=2
        assert_eq!(imatch[2], 0); // jmatch[0] = 2 -> imatch[2] written by i=0
        assert_eq!(imatch[6], -1); // untouched
    }

    #[test]
    fn inspection_fraction_is_between_zero_and_one() {
        let bounds = csr_bounds(100, 9);
        let mut data = vec![0.0; 900];
        let p = run_range_partitioned(
            &mut data,
            &bounds,
            |i, j| (i + j) as f64,
            2,
            Mode::InspectorExecutor,
        );
        assert!(p.inspection_fraction() >= 0.0 && p.inspection_fraction() <= 1.0);
        assert!(p.total_seconds() >= p.execution_seconds);
    }
}
