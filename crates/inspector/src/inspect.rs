//! Runtime inspectors over index arrays.
//!
//! An *inspector* is the piece of run-time code that inspector/executor
//! schemes insert before a candidate loop: it scans the index array (or the
//! set of subscripts the loop will use) and decides whether this particular
//! input allows the loop to run in parallel.  The decision is exact for the
//! given input, but it must be repeated on every invocation whose index
//! arrays may have changed — which is precisely the overhead the paper's
//! compile-time analysis avoids.
//!
//! All inspectors here detect the same Section 2 properties that the
//! compile-time analysis derives symbolically, so the two approaches can be
//! compared head-to-head on identical inputs.

use ss_properties::{ArrayProperty, PropertySet};
use ss_runtime::{chunk_ranges, time_it};
use std::collections::HashSet;

/// How an inspection is carried out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InspectorConfig {
    /// Number of threads used for the inspection scan itself.  Production
    /// inspector/executor systems parallelize the inspector; `1` models the
    /// straightforward serial inspector.
    pub threads: usize,
    /// Whether injectivity should be checked at all.  Injectivity needs a
    /// hash set (or a shadow array over the value domain) and is noticeably
    /// more expensive than the monotonicity scan; callers that only need
    /// monotonicity can switch it off.
    pub check_injectivity: bool,
}

impl InspectorConfig {
    /// A serial inspector checking every property.
    pub fn serial() -> InspectorConfig {
        InspectorConfig {
            threads: 1,
            check_injectivity: true,
        }
    }

    /// A parallel inspector checking every property.
    pub fn parallel(threads: usize) -> InspectorConfig {
        InspectorConfig {
            threads: threads.max(1),
            check_injectivity: true,
        }
    }

    /// A serial inspector that only performs the cheap monotonicity /
    /// non-negativity scan.
    pub fn monotonicity_only() -> InspectorConfig {
        InspectorConfig {
            threads: 1,
            check_injectivity: false,
        }
    }
}

/// The outcome of inspecting one index array.
#[derive(Debug, Clone)]
pub struct InspectionReport {
    /// Properties that hold for the inspected contents.  The set is closed
    /// under implication, exactly like the compile-time property database.
    pub properties: PropertySet,
    /// Number of elements inspected.
    pub elements: usize,
    /// Wall-clock seconds spent inspecting (the run-time overhead an
    /// inspector/executor scheme pays on this invocation).
    pub seconds: f64,
}

impl InspectionReport {
    /// True if the report licenses parallel execution of a loop that needs
    /// `required` (i.e. every required property was observed).
    pub fn licenses(&self, required: &PropertySet) -> bool {
        required.iter().all(|p| self.properties.has(p))
    }
}

/// Inspects `a` and reports every Section 2 property that holds for its
/// current contents.
pub fn inspect_index_array(a: &[i64], config: &InspectorConfig) -> InspectionReport {
    let (properties, seconds) = time_it(|| {
        let mut props = PropertySet::empty();
        let scan = scan_order(a, config.threads);
        if scan.strictly_increasing {
            props.insert(ArrayProperty::StrictMonotonicInc);
        } else if scan.non_decreasing {
            props.insert(ArrayProperty::MonotonicInc);
        }
        if scan.strictly_decreasing {
            props.insert(ArrayProperty::StrictMonotonicDec);
        } else if scan.non_increasing {
            props.insert(ArrayProperty::MonotonicDec);
        }
        if scan.non_negative {
            props.insert(ArrayProperty::NonNegative);
        }
        if scan.identity {
            props.insert(ArrayProperty::Identity);
        }
        if config.check_injectivity
            && !props.has(ArrayProperty::Injective)
            && is_injective_runtime(a, config.threads)
        {
            props.insert(ArrayProperty::Injective);
        }
        props
    });
    InspectionReport {
        properties,
        elements: a.len(),
        seconds,
    }
}

/// Inspects only the elements of `a` selected by `keep` for injectivity
/// (the Figure 5 "injective subset" pattern: only non-negative entries of
/// `jmatch` are used as subscripts).
pub fn inspect_injective_subset(a: &[i64], keep: impl Fn(i64) -> bool) -> InspectionReport {
    let (ok, seconds) = time_it(|| {
        let mut seen = HashSet::with_capacity(a.len());
        a.iter().filter(|&&v| keep(v)).all(|&v| seen.insert(v))
    });
    let mut properties = PropertySet::empty();
    if ok {
        // Subset injectivity is reported as plain injectivity of the
        // filtered view; the caller knows which filter it asked about.
        properties.insert(ArrayProperty::Injective);
    }
    InspectionReport {
        properties,
        elements: a.len(),
        seconds,
    }
}

/// Inspects the Figure 4 "monotonic difference" condition at run time: the
/// per-row windows `[j1(i), j2(i))` with `j1(i) = rowstr[i] - nzloc[i-1]`
/// (0 for the first row) and `j2(i) = rowstr[i+1] - nzloc[i]` must be
/// well-formed and non-overlapping across rows.  This is what an
/// inspector/executor scheme would have to re-establish on every invocation
/// of the CG gather loop; the compile-time analysis derives it once from the
/// code that fills `rowstr` and `nzloc`.
pub fn inspect_monotonic_difference(rowstr: &[i64], nzloc: &[i64]) -> InspectionReport {
    let (ok, seconds) = time_it(|| {
        let nrows = nzloc.len().min(rowstr.len().saturating_sub(1));
        let mut prev_end = i64::MIN;
        for i in 0..nrows {
            let j1 = if i == 0 { 0 } else { rowstr[i] - nzloc[i - 1] };
            let j2 = rowstr[i + 1] - nzloc[i];
            if j1 > j2 || j1 < prev_end {
                return false;
            }
            prev_end = j2;
        }
        true
    });
    let mut properties = PropertySet::empty();
    if ok {
        // Reported as monotonicity of the difference sequence; the caller
        // knows which pair of arrays it asked about.
        properties.insert(ArrayProperty::MonotonicInc);
    }
    InspectionReport {
        properties,
        elements: rowstr.len(),
        seconds,
    }
}

/// Inspects the *write-index multiset* of a scatter loop for conflicts: the
/// loop `target[index[i]] = f(i)` is output-dependence-free exactly when no
/// subscript value occurs twice.  `guard(i)` selects which iterations write
/// (Figure 5's `if (jmatch[i] >= 0)`); unguarded loops pass `|_| true`.
pub fn inspect_write_conflicts(index: &[i64], guard: impl Fn(usize) -> bool) -> InspectionReport {
    let (ok, seconds) = time_it(|| {
        let mut seen = HashSet::with_capacity(index.len());
        (0..index.len())
            .filter(|&i| guard(i))
            .all(|i| seen.insert(index[i]))
    });
    let mut properties = PropertySet::empty();
    if ok {
        properties.insert(ArrayProperty::Injective);
    }
    InspectionReport {
        properties,
        elements: index.len(),
        seconds,
    }
}

/// Partial order facts gathered by a single (possibly parallel) scan.
struct OrderScan {
    non_decreasing: bool,
    non_increasing: bool,
    strictly_increasing: bool,
    strictly_decreasing: bool,
    non_negative: bool,
    identity: bool,
}

fn scan_order(a: &[i64], threads: usize) -> OrderScan {
    if a.len() <= 1 {
        return OrderScan {
            non_decreasing: true,
            non_increasing: true,
            strictly_increasing: true,
            strictly_decreasing: true,
            non_negative: a.iter().all(|&v| v >= 0),
            identity: a.iter().enumerate().all(|(i, &v)| v == i as i64),
        };
    }
    // Each chunk scans its own adjacent pairs plus the pair straddling its
    // left boundary, so the union of chunks covers every adjacent pair
    // exactly once and the scan parallelizes without synchronization.
    let chunk_results: Vec<OrderScan> = if threads <= 1 {
        vec![scan_chunk(a, 0..a.len())]
    } else {
        let ranges = chunk_ranges(a.len(), threads);
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|r| scope.spawn(move |_| scan_chunk(a, r)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .expect("inspector thread panicked")
    };
    chunk_results.into_iter().fold(
        OrderScan {
            non_decreasing: true,
            non_increasing: true,
            strictly_increasing: true,
            strictly_decreasing: true,
            non_negative: true,
            identity: true,
        },
        |acc, c| OrderScan {
            non_decreasing: acc.non_decreasing && c.non_decreasing,
            non_increasing: acc.non_increasing && c.non_increasing,
            strictly_increasing: acc.strictly_increasing && c.strictly_increasing,
            strictly_decreasing: acc.strictly_decreasing && c.strictly_decreasing,
            non_negative: acc.non_negative && c.non_negative,
            identity: acc.identity && c.identity,
        },
    )
}

fn scan_chunk(a: &[i64], r: std::ops::Range<usize>) -> OrderScan {
    let mut s = OrderScan {
        non_decreasing: true,
        non_increasing: true,
        strictly_increasing: true,
        strictly_decreasing: true,
        non_negative: true,
        identity: true,
    };
    for i in r {
        let v = a[i];
        s.non_negative &= v >= 0;
        s.identity &= v == i as i64;
        if i > 0 {
            let prev = a[i - 1];
            s.non_decreasing &= prev <= v;
            s.strictly_increasing &= prev < v;
            s.non_increasing &= prev >= v;
            s.strictly_decreasing &= prev > v;
        }
    }
    s
}

/// Run-time injectivity check.  For dense, bounded-domain index arrays (the
/// common case for the benchmarks: subscripts are element indices of another
/// array) a bit-vector over the value range is used; otherwise a hash set.
fn is_injective_runtime(a: &[i64], threads: usize) -> bool {
    if a.is_empty() {
        return true;
    }
    let (min, max) = a
        .iter()
        .fold((i64::MAX, i64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let span = (max - min) as u128 + 1;
    // A value span of up to 4x the element count keeps the bit-vector small
    // and cache-friendly; beyond that, fall back to hashing.
    if span <= (a.len() as u128) * 4 {
        let mut seen = vec![false; span as usize];
        for &v in a {
            let slot = (v - min) as usize;
            if seen[slot] {
                return false;
            }
            seen[slot] = true;
        }
        true
    } else if threads <= 1 || a.len() < 1 << 14 {
        let mut seen = HashSet::with_capacity(a.len());
        a.iter().all(|&v| seen.insert(v))
    } else {
        // Parallel hash-based check: each thread builds the set for its
        // chunk, then the per-chunk sets are merged.  (Merging is serial but
        // touches each value once more at most.)
        let ranges = chunk_ranges(a.len(), threads);
        let sets: Vec<Option<HashSet<i64>>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|r| {
                    scope.spawn(move |_| {
                        let mut s = HashSet::with_capacity(r.len());
                        for &v in &a[r] {
                            if !s.insert(v) {
                                return None;
                            }
                        }
                        Some(s)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .expect("inspector thread panicked");
        let mut merged = HashSet::with_capacity(a.len());
        for s in sets {
            let Some(s) = s else { return false };
            for v in s {
                if !merged.insert(v) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_properties::concrete;

    #[test]
    fn monotonic_but_not_injective_rowptr() {
        let rowptr = vec![0i64, 3, 3, 7, 12];
        let r = inspect_index_array(&rowptr, &InspectorConfig::serial());
        assert!(r.properties.has(ArrayProperty::MonotonicInc));
        assert!(!r.properties.has(ArrayProperty::StrictMonotonicInc));
        assert!(!r.properties.has(ArrayProperty::Injective));
        assert!(r.properties.has(ArrayProperty::NonNegative));
        assert_eq!(r.elements, 5);
    }

    #[test]
    fn permutation_is_injective_not_monotonic() {
        let perm = vec![3i64, 0, 2, 1, 4];
        let r = inspect_index_array(&perm, &InspectorConfig::serial());
        assert!(r.properties.has(ArrayProperty::Injective));
        assert!(!r.properties.has(ArrayProperty::MonotonicInc));
        assert!(!r.properties.has(ArrayProperty::MonotonicDec));
    }

    #[test]
    fn identity_implies_everything_upward() {
        let id: Vec<i64> = (0..100).collect();
        let r = inspect_index_array(&id, &InspectorConfig::serial());
        assert!(r.properties.has(ArrayProperty::Identity));
        assert!(r.properties.has(ArrayProperty::StrictMonotonicInc));
        assert!(r.properties.has(ArrayProperty::Injective));
        assert!(r.properties.has(ArrayProperty::NonNegative));
    }

    #[test]
    fn strictly_decreasing_detected() {
        let a: Vec<i64> = (0..50).rev().collect();
        let r = inspect_index_array(&a, &InspectorConfig::serial());
        assert!(r.properties.has(ArrayProperty::StrictMonotonicDec));
        assert!(r.properties.has(ArrayProperty::Injective));
    }

    #[test]
    fn parallel_and_serial_inspection_agree() {
        let inputs: Vec<Vec<i64>> = vec![
            (0..10_000).collect(),
            (0..10_000).rev().collect(),
            vec![5; 10_000],
            (0..10_000).map(|i| i / 3).collect(),
            (0..10_000).map(|i| (i * 7919) % 10_000).collect(),
            (0..10_000).map(|i| i - 5_000).collect(),
        ];
        for a in &inputs {
            let s = inspect_index_array(a, &InspectorConfig::serial());
            let p = inspect_index_array(a, &InspectorConfig::parallel(4));
            assert_eq!(
                s.properties,
                p.properties,
                "input disagrees: {:?}…",
                &a[..4]
            );
        }
    }

    #[test]
    fn inspection_agrees_with_concrete_verifiers() {
        let inputs: Vec<Vec<i64>> = vec![
            vec![],
            vec![7],
            vec![1, 1, 2, 3],
            vec![0, 1, 2, 3, 4],
            vec![4, 3, 3, 1],
            vec![2, 9, 4, 4],
            vec![-3, -1, 0, 8],
        ];
        for a in &inputs {
            let r = inspect_index_array(a, &InspectorConfig::serial());
            for &p in ArrayProperty::all() {
                assert_eq!(
                    r.properties.has(p),
                    concrete::check_property(a, p),
                    "property {p} disagrees on {a:?}"
                );
            }
        }
    }

    #[test]
    fn injectivity_check_can_be_disabled() {
        let perm = vec![3i64, 0, 2, 1, 4];
        let r = inspect_index_array(&perm, &InspectorConfig::monotonicity_only());
        assert!(!r.properties.has(ArrayProperty::Injective));
    }

    #[test]
    fn hash_fallback_handles_sparse_value_domains() {
        // Values far apart force the HashSet path.
        let a: Vec<i64> = (0..1000).map(|i| i * 1_000_003).collect();
        let r = inspect_index_array(&a, &InspectorConfig::serial());
        assert!(r.properties.has(ArrayProperty::Injective));
        let mut b = a.clone();
        b[999] = b[0];
        let r = inspect_index_array(&b, &InspectorConfig::serial());
        assert!(!r.properties.has(ArrayProperty::Injective));
    }

    #[test]
    fn parallel_hash_injectivity_on_large_sparse_input() {
        let a: Vec<i64> = (0..40_000).map(|i| i * 1_000_003).collect();
        let r = inspect_index_array(&a, &InspectorConfig::parallel(4));
        assert!(r.properties.has(ArrayProperty::Injective));
        let mut b = a.clone();
        b[39_999] = b[17];
        let r = inspect_index_array(&b, &InspectorConfig::parallel(4));
        assert!(!r.properties.has(ArrayProperty::Injective));
    }

    #[test]
    fn subset_inspection_matches_figure5() {
        // jmatch: matched rows carry unique column indices, unmatched are -1.
        let jmatch = vec![2i64, -1, 0, -1, 5, 1];
        let r = inspect_injective_subset(&jmatch, |v| v >= 0);
        assert!(r.properties.has(ArrayProperty::Injective));
        // A duplicate inside the kept subset breaks it.
        let bad = vec![2i64, -1, 2, -1, 5, 1];
        let r = inspect_injective_subset(&bad, |v| v >= 0);
        assert!(!r.properties.has(ArrayProperty::Injective));
        // Duplicates among the filtered-out values do not matter.
        let ok = vec![2i64, -1, -1, -1, 5, 1];
        let r = inspect_injective_subset(&ok, |v| v >= 0);
        assert!(r.properties.has(ArrayProperty::Injective));
    }

    #[test]
    fn monotonic_difference_inspection_matches_figure4() {
        // Contiguous windows: rowstr cumulative sizes, nzloc cumulative
        // removed counts (the CG gather shape).
        let rowstr = vec![0i64, 4, 6, 11];
        let nzloc = vec![1i64, 2, 2];
        let r = inspect_monotonic_difference(&rowstr, &nzloc);
        assert!(r.properties.has(ArrayProperty::MonotonicInc));
        assert!(concrete::is_monotonic_difference(&rowstr, &nzloc));
        // A row that "removes" more entries than it contains makes its
        // window malformed (j1 > j2) and the inspector must refuse.
        let bad_nzloc = vec![5i64, 5, 5];
        let r = inspect_monotonic_difference(&rowstr, &bad_nzloc);
        assert!(!r.properties.has(ArrayProperty::MonotonicInc));
        assert!(!concrete::is_monotonic_difference(&rowstr, &bad_nzloc));
        // Degenerate inputs are accepted (no rows, no windows).
        let r = inspect_monotonic_difference(&[0], &[]);
        assert!(r.properties.has(ArrayProperty::MonotonicInc));
    }

    #[test]
    fn write_conflict_inspection() {
        let index = vec![4i64, 2, 7, 2, 9];
        let all = inspect_write_conflicts(&index, |_| true);
        assert!(!all.properties.has(ArrayProperty::Injective));
        // Guarding out iteration 3 removes the duplicate write.
        let guarded = inspect_write_conflicts(&index, |i| i != 3);
        assert!(guarded.properties.has(ArrayProperty::Injective));
    }

    #[test]
    fn licenses_checks_all_required_properties() {
        let rowptr = vec![0i64, 3, 3, 7];
        let r = inspect_index_array(&rowptr, &InspectorConfig::serial());
        let need_mono = PropertySet::single(ArrayProperty::MonotonicInc);
        let need_inj = PropertySet::single(ArrayProperty::Injective);
        assert!(r.licenses(&need_mono));
        assert!(!r.licenses(&need_inj));
        assert!(r.licenses(&PropertySet::empty()));
    }
}
