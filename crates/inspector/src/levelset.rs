//! Dependence level sets: the inspector as a *scheduler*.
//!
//! The [`inspect`](crate::inspect) and [`lrpd`](crate::lrpd) baselines
//! answer a yes/no question — is this loop parallel for this input?  For
//! carried loops the answer is "no", and the cost-model baseline concedes
//! the whole SpTRSV / Gauss-Seidel workload class to serial execution.
//! Production sparse solvers do better: they inspect the dependence
//! structure once and run the loop as a sequence of parallel *wavefronts*
//! (level sets), where every iteration in a level depends only on
//! iterations in strictly earlier levels.
//!
//! [`build_level_sets`] turns per-iteration read/write address sets —
//! recorded by a faithful serial inspection pass — into that schedule
//! without materializing the iteration DAG.  Iterations are scanned in
//! serial order while two maps carry, per address, the deepest level that
//! wrote it (`wlevel`) and the deepest level that read it (`rlevel`):
//!
//! * an iteration's level is `max` over `wlevel[a] + 1` for every address
//!   it reads (RAW) and `max(wlevel[a], rlevel[a]) + 1` for every address
//!   it writes (WAW, WAR);
//! * afterwards its reads raise `rlevel` and its writes raise `wlevel` to
//!   that level.
//!
//! Two dependent iterations therefore never share a level, and iterations
//! within one level touch disjoint write sets — executing level by level
//! with a barrier between levels reproduces the serial result bit for bit.
//! A loop with no carried dependence at all collapses to a single level
//! (fully parallel); a true recurrence degenerates to `n` levels of one
//! iteration each, which the executor's cost threshold sends back to the
//! serial engine.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

static LEVELSET_BUILDS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of [`build_level_sets`] invocations (the wavefront
/// analogue of `ss_ir::bytecode::bytecode_compilation_count`): tests
/// assert a schedule is built once per `(artifacts, input)` and then
/// served from the cache, never rebuilt per run.
pub fn levelset_build_count() -> u64 {
    LEVELSET_BUILDS.load(Ordering::Relaxed)
}

/// The read/write footprint of one iteration, as flat addresses.  What an
/// address *is* is the caller's business (the wavefront engine packs
/// `array slot << 48 | flattened index`); the schedule only needs equality
/// and hashing.
#[derive(Debug, Default, Clone)]
pub struct IterationAccess {
    /// Addresses the iteration read (value uses).
    pub reads: Vec<u64>,
    /// Addresses the iteration wrote.
    pub writes: Vec<u64>,
}

/// A wavefront schedule: iteration → level, plus the level-major view the
/// executor walks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelSchedule {
    /// `levels[k]` is the level of iteration ordinal `k`.
    pub levels: Vec<u32>,
    /// Iteration ordinals grouped by level, each group in ascending
    /// (serial) order: `by_level[l]` is wavefront `l`.
    pub by_level: Vec<Vec<u32>>,
}

impl LevelSchedule {
    /// Number of iterations scheduled.
    pub fn iterations(&self) -> usize {
        self.levels.len()
    }

    /// Number of wavefronts (1 ⇒ fully parallel, `iterations()` ⇒ a pure
    /// recurrence).
    pub fn nlevels(&self) -> usize {
        self.by_level.len()
    }

    /// Mean iterations per wavefront — the executor's profitability
    /// signal.  Zero-iteration schedules report 0.
    pub fn avg_width(&self) -> f64 {
        if self.by_level.is_empty() {
            0.0
        } else {
            self.levels.len() as f64 / self.by_level.len() as f64
        }
    }

    /// Approximate in-memory footprint in bytes (monotone, not exact) —
    /// what a byte-bounded artifact cache charges per cached schedule.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.levels.len() * std::mem::size_of::<u32>()
            + self
                .by_level
                .iter()
                .map(|l| std::mem::size_of::<Vec<u32>>() + l.len() * std::mem::size_of::<u32>())
                .sum::<usize>()
    }

    /// Renders the schedule in the golden-file layout: a header line, then
    /// one `level k: i0 i1 …` line per wavefront.
    pub fn render(&self) -> String {
        let mut out = format!(
            "iterations {} levels {} avg_width {:.2}\n",
            self.iterations(),
            self.nlevels(),
            self.avg_width()
        );
        for (level, iters) in self.by_level.iter().enumerate() {
            out.push_str(&format!("level {level}:"));
            for &k in iters {
                out.push_str(&format!(" {k}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Builds the level-set schedule for a carried loop from each iteration's
/// recorded read/write address sets, in serial iteration order.
///
/// The construction is the standard one-pass scan described at module
/// level; it is `O(total accesses)` with two hash maps over the touched
/// addresses, and never builds the iteration DAG.
pub fn build_level_sets(accesses: &[IterationAccess]) -> LevelSchedule {
    LEVELSET_BUILDS.fetch_add(1, Ordering::Relaxed);
    let mut wlevel: HashMap<u64, u32> = HashMap::new();
    let mut rlevel: HashMap<u64, u32> = HashMap::new();
    let mut levels = Vec::with_capacity(accesses.len());
    let mut by_level: Vec<Vec<u32>> = Vec::new();
    for (k, acc) in accesses.iter().enumerate() {
        let mut level = 0u32;
        for a in &acc.reads {
            // RAW: run strictly after the deepest writer of this address.
            if let Some(&w) = wlevel.get(a) {
                level = level.max(w + 1);
            }
        }
        for a in &acc.writes {
            // WAW and WAR: run strictly after the deepest writer *and* the
            // deepest reader of this address.
            if let Some(&w) = wlevel.get(a) {
                level = level.max(w + 1);
            }
            if let Some(&r) = rlevel.get(a) {
                level = level.max(r + 1);
            }
        }
        for a in &acc.reads {
            let e = rlevel.entry(*a).or_insert(level);
            *e = (*e).max(level);
        }
        for a in &acc.writes {
            let e = wlevel.entry(*a).or_insert(level);
            *e = (*e).max(level);
        }
        levels.push(level);
        if by_level.len() <= level as usize {
            by_level.resize(level as usize + 1, Vec::new());
        }
        by_level[level as usize].push(k as u32);
    }
    LevelSchedule { levels, by_level }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(reads: &[u64], writes: &[u64]) -> IterationAccess {
        IterationAccess {
            reads: reads.to_vec(),
            writes: writes.to_vec(),
        }
    }

    #[test]
    fn independent_iterations_collapse_to_one_level() {
        // Disjoint writes, shared read-only input: fully parallel.
        let s = build_level_sets(&[acc(&[100], &[0]), acc(&[100], &[1]), acc(&[100], &[2])]);
        assert_eq!(s.levels, vec![0, 0, 0]);
        assert_eq!(s.nlevels(), 1);
        assert_eq!(s.by_level, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn a_pure_recurrence_gets_one_iteration_per_level() {
        // x[i] reads x[i-1]: the chain serializes completely.
        let s = build_level_sets(&[
            acc(&[], &[0]),
            acc(&[0], &[1]),
            acc(&[1], &[2]),
            acc(&[2], &[3]),
        ]);
        assert_eq!(s.levels, vec![0, 1, 2, 3]);
        assert_eq!(s.nlevels(), 4);
        assert!((s.avg_width() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn a_sparse_triangular_pattern_forms_wide_wavefronts() {
        // Row i reads the rows listed in its sparsity pattern and writes
        // itself — the SpTRSV shape.  Rows 0 and 1 are independent; 2
        // needs 0; 3 needs 1 and 2; 4 needs 0 only.
        let s = build_level_sets(&[
            acc(&[], &[10]),
            acc(&[], &[11]),
            acc(&[10], &[12]),
            acc(&[11, 12], &[13]),
            acc(&[10], &[14]),
        ]);
        assert_eq!(s.levels, vec![0, 0, 1, 2, 1]);
        assert_eq!(s.by_level, vec![vec![0, 1], vec![2, 4], vec![3]]);
    }

    #[test]
    fn waw_and_war_conflicts_are_ordered_not_ignored() {
        // Two writes to the same address (histogram shape) must land in
        // different levels, preserving last-writer-wins; a read followed
        // by a write of the same address (WAR) must also be split.
        let waw = build_level_sets(&[acc(&[], &[5]), acc(&[], &[5])]);
        assert_eq!(waw.levels, vec![0, 1]);
        let war = build_level_sets(&[acc(&[5], &[0]), acc(&[], &[5])]);
        assert_eq!(war.levels, vec![0, 1]);
    }

    #[test]
    fn within_iteration_reuse_does_not_self_serialize() {
        // An iteration reading and writing its *own* address is fine: the
        // conflict is within one iteration, not carried.
        let s = build_level_sets(&[acc(&[0], &[0]), acc(&[1], &[1])]);
        assert_eq!(s.levels, vec![0, 0]);
    }

    #[test]
    fn build_count_advances_once_per_build() {
        let before = levelset_build_count();
        build_level_sets(&[acc(&[], &[0])]);
        assert!(levelset_build_count() > before);
    }

    #[test]
    fn render_is_stable_and_line_oriented() {
        let s = build_level_sets(&[acc(&[], &[0]), acc(&[0], &[1]), acc(&[], &[2])]);
        let text = s.render();
        assert_eq!(
            text,
            "iterations 3 levels 2 avg_width 1.50\nlevel 0: 0 2\nlevel 1: 1\n"
        );
    }
}
