//! The `sspar` binary: thin wrapper around [`ss_cli::run`].

use ss_cli::{run, CliError, FsReader};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args, &FsReader) {
        Ok(text) => print!("{text}"),
        Err(CliError::Usage(u)) => {
            eprint!("{u}");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
