//! The `sspar` binary: thin wrapper around [`ss_cli::run`], exiting with
//! the stable per-class codes of
//! [`SsError::exit_code`](ss_interp::SsError::exit_code).

use ss_cli::{run, FsReader};
use ss_interp::SsError;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args, &FsReader) {
        Ok(text) => print!("{text}"),
        Err(SsError::Usage(u)) => {
            eprint!("{u}");
            std::process::exit(SsError::Usage(String::new()).exit_code());
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(e.exit_code());
        }
    }
}
