//! # ss-cli — the `sspar` command-line front end
//!
//! A miniature Cetus: point it at a mini-C kernel and it runs the
//! compile-time analysis, prints per-loop verdicts (extended vs. baseline),
//! the derived index-array facts, the Section 3.5-style phase trace, and the
//! source annotated with `#pragma omp parallel for` on every loop it proved
//! parallel.
//!
//! ```text
//! sspar analyze kernel.c          # verdicts + facts + annotated source
//! sspar analyze kernel.c --format json   # the same, machine-readable
//! sspar trace   kernel.c          # Phase 1 / Phase 2 summaries per loop
//! sspar study                     # the Figure-1 catalogue study table
//! sspar kernels                   # list the built-in catalogue kernels
//! sspar engines                   # list the registered execution engines
//! sspar analyze --kernel fig9_csr_product   # analyze a catalogue kernel
//! sspar tune --kernel sptrsv_levels         # search + persist the best policy
//! sspar bench --out BENCH_interp.json       # per-engine medians snapshot
//! ```
//!
//! The CLI is a thin shell over the library API: every command drives one
//! process-wide [`ss_interp::Session`] (so repeated in-process invocations
//! share the content-addressed artifact cache), engines are whatever that
//! session's [`EngineRegistry`](ss_interp::EngineRegistry) holds — the CLI
//! never names an engine itself — and every failure is an
//! [`SsError`] whose [`exit_code`](SsError::exit_code) the binary exits
//! with.
//!
//! The command logic lives in [`run`], which is a pure function from
//! arguments (plus an abstract file reader) to output text, so the whole
//! CLI is unit-testable without touching the file system.

#![warn(missing_docs)]

use ss_aggregation::analyze_program;
use ss_interp::{
    analysis_json, json, registry_json, reset_pair_counts, set_pair_profiling,
    top_instruction_pairs, ExecMode, ExecutionMode, OptLevel, RunPolicy, RunRequest,
    ScheduleChoice, Session, SsError, TunerConfig, ValidationMode,
};
use ss_ir::{parse_program, LoopId};
use ss_parallelizer::{run_study, StudyInput, VerdictKind};
use std::sync::OnceLock;

/// The process-wide session: one artifact cache and one engine registry
/// serve every command of every in-process invocation.
fn session() -> &'static Session {
    static SESSION: OnceLock<Session> = OnceLock::new();
    SESSION.get_or_init(Session::new)
}

/// The usage text.
pub fn usage() -> String {
    "sspar — compile-time parallelization of subscripted subscript patterns\n\
     \n\
     USAGE:\n\
     \u{20}   sspar analyze <file.c> [--baseline] [--no-source] [--dump-bytecode] [--opt-level 0|1] [--format text|json]\n\
     \u{20}   sspar analyze --kernel <name>  [same options]\n\
     \u{20}   sspar trace   <file.c>\n\
     \u{20}   sspar trace   --kernel <name>\n\
     \u{20}   sspar run     <file.c> [run options]\n\
     \u{20}   sspar run     --kernel <name> [run options]\n\
     \u{20}   sspar tune    <file.c> [tune options]\n\
     \u{20}   sspar tune    --kernel <name> [tune options]\n\
     \u{20}   sspar bench   [bench options]\n\
     \u{20}   sspar study\n\
     \u{20}   sspar kernels\n\
     \u{20}   sspar engines [--format text|json]\n\
     \u{20}   sspar serve   [serve options]\n\
     \u{20}   sspar request <json-line> [--addr <host:port>]\n\
     \n\
     COMMANDS:\n\
     \u{20}   analyze   run the full pipeline and print per-loop verdicts,\n\
     \u{20}             derived index-array facts and the annotated source\n\
     \u{20}   trace     print the Phase 1 / Phase 2 aggregation summaries\n\
     \u{20}             (the paper's Section 3.5 trace) for every loop\n\
     \u{20}   run       analyze the program, synthesize inputs, execute it\n\
     \u{20}             serially and in parallel, and print per-loop timings\n\
     \u{20}   tune      search the execution-policy space (engine x opt level x\n\
     \u{20}             schedule x chunk x threads) with measured trials, print\n\
     \u{20}             the search table, and persist the winner per\n\
     \u{20}             (program, input shape) — `run --policy tuned` reapplies it\n\
     \u{20}   bench     execute one catalogue kernel serially under every\n\
     \u{20}             engine/opt-level and emit the machine-readable medians\n\
     \u{20}             snapshot (BENCH_interp.json)\n\
     \u{20}   study     run the Figure-1 study over the built-in catalogue\n\
     \u{20}   kernels   list the built-in catalogue kernels\n\
     \u{20}   engines   list the registered execution engines and their\n\
     \u{20}             capabilities (exactly what --engine accepts)\n\
     \u{20}   serve     run the sspard daemon in-process (NDJSON over TCP)\n\
     \u{20}             until a `shutdown` request drains it\n\
     \u{20}   request   send one raw NDJSON request line to a running sspard\n\
     \u{20}             and print the response line\n\
     \n\
     SERVE OPTIONS:\n\
     \u{20}   --addr <host:port>      listen address (default 127.0.0.1:7878; :0 picks a port)\n\
     \u{20}   --workers <N>           worker threads (default 4)\n\
     \u{20}   --shards <N>            persistent thread-team shards (default 2)\n\
     \u{20}   --queue <N>             bounded request-queue depth (default 64)\n\
     \u{20}   --cache-capacity <N>    per-tenant artifact-cache entry bound (default unbounded)\n\
     \u{20}   --cache-capacity-bytes <N>  per-tenant artifact-cache byte bound (default unbounded)\n\
     \n\
     OPTIONS:\n\
     \u{20}   --kernel <name>  use a built-in catalogue kernel instead of a file\n\
     \u{20}   --baseline       analyze: also show the property-free baseline verdicts\n\
     \u{20}   --no-source      analyze: omit the annotated source from the output\n\
     \u{20}   --dump-bytecode  analyze: print the register-machine bytecode listing\n\
     \u{20}   --profile        analyze: execute the program once (bytecode engine,\n\
     \u{20}                    serial) with instruction-pair profiling on and print\n\
     \u{20}                    the hottest dynamically adjacent pairs — the fusion\n\
     \u{20}                    candidates for a profile-guided superinstruction pass\n\
     \u{20}                    (SSPAR_PROFILE=1 implies it)\n\
     \u{20}   --opt-level <0|1>  which bytecode stream to use: the base compiler's (0)\n\
     \u{20}                    or the optimized one (1, default — fused subscripted-\n\
     \u{20}                    subscript loads, compare-and-branch, constant folding)\n\
     \u{20}   --format <text|json>  analyze/engines/run: output format (default text);\n\
     \u{20}                    JSON schemas are stable for downstream tooling\n\
     \n\
     RUN OPTIONS:\n\
     \u{20}   --threads <N>           worker threads (default: all hardware threads)\n\
     \u{20}   --n <SIZE>              input scale: loop bounds / data modulus (default 256)\n\
     \u{20}   --seed <S>              input data seed (default 1)\n\
     \u{20}   --validate              exit nonzero unless all engines' heaps are identical\n\
     \u{20}   --baseline inspector    run the runtime-inspector baseline on serial loops\n\
     \u{20}   --schedule <auto|static|dynamic>  scheduling of parallel loops (default auto)\n\
     \u{20}   --engine <name>         execution engine, from `sspar engines`\n\
     \u{20}                           (default: the registry default)\n\
     \u{20}   --opt-level <0|1>       bytecode engine: run the O0 or O1 stream (default 1)\n\
     \u{20}   --policy <default|tuned>  tuned: search-or-reapply the persisted best\n\
     \u{20}                           policy for this (program, input shape) and run it\n\
     \u{20}   --format <text|json>    print the structured run outcome as JSON\n\
     \n\
     TUNE OPTIONS:\n\
     \u{20}   --budget-trials <N>     cap on measured trials (default: the full pruned space)\n\
     \u{20}   --repeats <N>           timed repeats per candidate, median kept (default 3)\n\
     \u{20}   --threads <N>           thread count the default policy is anchored to\n\
     \u{20}   --n <SIZE>              input scale (default 256)\n\
     \u{20}   --seed <S>              input data seed (default 1)\n\
     \u{20}   --trial-seed <S>        deterministic trial-order seed (default 0)\n\
     \u{20}   --format <text|json>    print the search table or the stable JSON outcome\n\
     \n\
     BENCH OPTIONS:\n\
     \u{20}   --kernel <name>         catalogue kernel to measure (default fig9_csr_product)\n\
     \u{20}   --n <SIZE>              input scale (default 256)\n\
     \u{20}   --repeats <N>           timed repeats per engine leg, median kept (default 3)\n\
     \u{20}   --out <PATH>            also write the JSON snapshot to this file\n"
        .to_string()
}

fn usage_err() -> SsError {
    SsError::Usage(usage())
}

/// How the CLI obtains file contents; tests substitute an in-memory reader.
pub trait SourceReader {
    /// Reads the file at `path` into a string.
    fn read(&self, path: &str) -> Result<String, String>;
}

/// Reads from the real file system.
pub struct FsReader;

impl SourceReader for FsReader {
    fn read(&self, path: &str) -> Result<String, String> {
        std::fs::read_to_string(path).map_err(|e| e.to_string())
    }
}

/// Output format of machine-readable-capable commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Human-readable tables (the default).
    #[default]
    Text,
    /// Stable JSON for downstream tooling.
    Json,
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `sspar analyze …`
    Analyze {
        /// Source of the kernel text.
        input: Input,
        /// Show baseline verdicts alongside the extended ones.
        baseline: bool,
        /// Omit the annotated source.
        no_source: bool,
        /// Print the register-machine bytecode listing.
        dump_bytecode: bool,
        /// Execute once with instruction-pair profiling and print the
        /// hottest pairs.
        profile: bool,
        /// Which bytecode stream `--dump-bytecode` prints (and
        /// `--profile` executes).
        opt_level: OptLevel,
        /// Text or JSON output.
        format: OutputFormat,
    },
    /// `sspar trace …`
    Trace {
        /// Source of the kernel text.
        input: Input,
    },
    /// `sspar run …`
    Run {
        /// Source of the kernel text.
        input: Input,
        /// Execution options.
        options: RunOptions,
    },
    /// `sspar tune …` — search the execution-policy space and persist the
    /// winner in the session artifact cache.
    Tune {
        /// Source of the kernel text.
        input: Input,
        /// Tuner options.
        options: TuneOptions,
    },
    /// `sspar bench` — serial per-engine/opt-level medians as stable JSON.
    Bench {
        /// Bench options.
        options: BenchOptions,
    },
    /// `sspar study`
    Study,
    /// `sspar kernels`
    Kernels,
    /// `sspar engines`
    Engines {
        /// Text or JSON output.
        format: OutputFormat,
    },
    /// `sspar serve` — run the `sspard` daemon in-process until drained.
    Serve {
        /// Daemon knobs.
        options: ServeOptions,
    },
    /// `sspar request` — one NDJSON request against a running daemon.
    Request {
        /// The raw request line (one JSON object).
        line: String,
        /// Daemon address.
        addr: String,
    },
}

/// Options of `sspar serve` (a subset of
/// [`ss_daemon::DaemonConfig`](ss_daemon::server::DaemonConfig)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOptions {
    /// Listen address.
    pub addr: String,
    /// Worker threads.
    pub workers: usize,
    /// Persistent thread-team shards.
    pub shards: usize,
    /// Bounded request-queue depth.
    pub queue: usize,
    /// Per-tenant artifact-cache entry bound.
    pub cache_capacity: Option<usize>,
    /// Per-tenant artifact-cache byte bound.
    pub cache_capacity_bytes: Option<usize>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:7878".to_string(),
            workers: 4,
            shards: 2,
            queue: 64,
            cache_capacity: None,
            cache_capacity_bytes: None,
        }
    }
}

/// The `--policy` knob of `sspar run`: how execution options are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyFlag {
    /// The request's own engine/schedule/thread options, unmodified.
    #[default]
    Default,
    /// Search-or-reapply the persisted tuned policy for this
    /// (program, input shape) and run under it.
    Tuned,
}

/// Options of `sspar tune`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuneOptions {
    /// Cap on measured trials (`None` = the full pruned space).
    pub budget_trials: Option<usize>,
    /// Timed repeats per candidate; the median is kept.
    pub repeats: usize,
    /// Thread count the default policy is anchored to (`None` = all
    /// hardware threads).
    pub threads: Option<usize>,
    /// Input scale (`--n`).
    pub scale: i64,
    /// Input data seed.
    pub seed: u64,
    /// Deterministic trial-order seed.
    pub trial_seed: u64,
    /// Text or JSON output.
    pub format: OutputFormat,
}

impl Default for TuneOptions {
    fn default() -> TuneOptions {
        TuneOptions {
            budget_trials: None,
            repeats: 3,
            threads: None,
            scale: 256,
            seed: 1,
            trial_seed: 0,
            format: OutputFormat::Text,
        }
    }
}

/// Options of `sspar bench`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchOptions {
    /// Catalogue kernel to measure.
    pub kernel: String,
    /// Input scale (`--n`).
    pub scale: i64,
    /// Timed repeats per engine leg; the median is kept.
    pub repeats: usize,
    /// Also write the JSON snapshot to this path.
    pub out: Option<String>,
}

impl Default for BenchOptions {
    fn default() -> BenchOptions {
        BenchOptions {
            kernel: "fig9_csr_product".to_string(),
            scale: 256,
            repeats: 3,
            out: None,
        }
    }
}

/// Options of `sspar run`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOptions {
    /// Worker threads (`None` = all hardware threads).
    pub threads: Option<usize>,
    /// Input scale (`--n`).
    pub scale: i64,
    /// Input seed.
    pub seed: u64,
    /// Exit nonzero unless all engines' final heaps are bit-identical.
    pub validate: bool,
    /// Run the runtime-inspector baseline on serial loops.
    pub baseline_inspector: bool,
    /// Scheduling of dispatched loops.
    pub schedule: ScheduleChoice,
    /// Execution engine by registry name (`None` = registry default).
    pub engine: Option<String>,
    /// Bytecode stream opt-level-sensitive engines run (`--opt-level`).
    pub opt_level: OptLevel,
    /// How execution options are chosen (`--policy`).
    pub policy: PolicyFlag,
    /// Text or JSON output.
    pub format: OutputFormat,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            threads: None,
            scale: 256,
            seed: 1,
            validate: false,
            baseline_inspector: false,
            schedule: ScheduleChoice::Auto,
            engine: None,
            opt_level: OptLevel::O1,
            policy: PolicyFlag::Default,
            format: OutputFormat::Text,
        }
    }
}

/// Where the kernel text comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Input {
    /// A path on disk.
    File(String),
    /// A named kernel from the built-in catalogue.
    Catalogue(String),
}

fn parse_format(v: Option<&&str>) -> Result<OutputFormat, SsError> {
    match v {
        Some(&"text") => Ok(OutputFormat::Text),
        Some(&"json") => Ok(OutputFormat::Json),
        _ => Err(usage_err()),
    }
}

/// Parses the argument vector (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, SsError> {
    let mut it = args.iter().map(String::as_str);
    let cmd = it.next().ok_or_else(usage_err)?;
    match cmd {
        "study" => Ok(Command::Study),
        "kernels" => Ok(Command::Kernels),
        "engines" => {
            let rest: Vec<&str> = it.collect();
            let mut format = OutputFormat::Text;
            let mut i = 0;
            while i < rest.len() {
                match rest[i] {
                    "--format" => {
                        format = parse_format(rest.get(i + 1))?;
                        i += 2;
                    }
                    _ => return Err(usage_err()),
                }
            }
            Ok(Command::Engines { format })
        }
        "serve" => {
            let rest: Vec<&str> = it.collect();
            let mut options = ServeOptions::default();
            let parse_num = |rest: &[&str], i: usize| -> Result<usize, SsError> {
                rest.get(i + 1)
                    .and_then(|v| v.parse::<usize>().ok())
                    .ok_or_else(usage_err)
            };
            let mut i = 0;
            while i < rest.len() {
                match rest[i] {
                    "--addr" => {
                        options.addr = rest.get(i + 1).ok_or_else(usage_err)?.to_string();
                        i += 2;
                    }
                    "--workers" => {
                        options.workers = parse_num(&rest, i)?.max(1);
                        i += 2;
                    }
                    "--shards" => {
                        options.shards = parse_num(&rest, i)?.max(1);
                        i += 2;
                    }
                    "--queue" => {
                        options.queue = parse_num(&rest, i)?.max(1);
                        i += 2;
                    }
                    "--cache-capacity" => {
                        options.cache_capacity = Some(parse_num(&rest, i)?);
                        i += 2;
                    }
                    "--cache-capacity-bytes" => {
                        options.cache_capacity_bytes = Some(parse_num(&rest, i)?);
                        i += 2;
                    }
                    _ => return Err(usage_err()),
                }
            }
            Ok(Command::Serve { options })
        }
        "request" => {
            let rest: Vec<&str> = it.collect();
            let mut line: Option<String> = None;
            let mut addr = "127.0.0.1:7878".to_string();
            let mut i = 0;
            while i < rest.len() {
                match rest[i] {
                    "--addr" => {
                        addr = rest.get(i + 1).ok_or_else(usage_err)?.to_string();
                        i += 2;
                    }
                    other if line.is_none() => {
                        line = Some(other.to_string());
                        i += 1;
                    }
                    _ => return Err(usage_err()),
                }
            }
            let line = line.ok_or_else(usage_err)?;
            Ok(Command::Request { line, addr })
        }
        "run" => {
            let rest: Vec<&str> = it.collect();
            let mut input: Option<Input> = None;
            let mut options = RunOptions::default();
            let mut i = 0;
            let parse_val = |rest: &[&str], i: usize| -> Result<String, SsError> {
                rest.get(i + 1).map(|s| s.to_string()).ok_or_else(usage_err)
            };
            while i < rest.len() {
                match rest[i] {
                    "--kernel" => {
                        let name = parse_val(&rest, i)?;
                        input = Some(Input::Catalogue(name));
                        i += 2;
                    }
                    "--threads" => {
                        let v = parse_val(&rest, i)?;
                        let threads: usize = v.parse().map_err(|_| usage_err())?;
                        if threads < 1 {
                            return Err(usage_err());
                        }
                        options.threads = Some(threads);
                        i += 2;
                    }
                    "--n" => {
                        let v = parse_val(&rest, i)?;
                        let scale: i64 = v.parse().map_err(|_| usage_err())?;
                        if scale < 1 {
                            return Err(usage_err());
                        }
                        options.scale = scale;
                        i += 2;
                    }
                    "--seed" => {
                        let v = parse_val(&rest, i)?;
                        options.seed = v.parse().map_err(|_| usage_err())?;
                        i += 2;
                    }
                    "--validate" => {
                        options.validate = true;
                        i += 1;
                    }
                    "--baseline" => {
                        match rest.get(i + 1) {
                            Some(&"inspector") => options.baseline_inspector = true,
                            _ => return Err(usage_err()),
                        }
                        i += 2;
                    }
                    "--schedule" => {
                        options.schedule = match rest.get(i + 1) {
                            Some(&"auto") => ScheduleChoice::Auto,
                            Some(&"static") => ScheduleChoice::Static,
                            Some(&"dynamic") => ScheduleChoice::Dynamic,
                            _ => return Err(usage_err()),
                        };
                        i += 2;
                    }
                    "--engine" => {
                        // Any name is accepted here; the registry decides at
                        // execution time (unknown names exit with code 5 and
                        // the list of what is registered).
                        let name = rest.get(i + 1).ok_or_else(usage_err)?;
                        if name.starts_with("--") {
                            return Err(usage_err());
                        }
                        options.engine = Some(name.to_string());
                        i += 2;
                    }
                    "--opt-level" => {
                        options.opt_level = rest
                            .get(i + 1)
                            .and_then(|v| OptLevel::from_flag(v))
                            .ok_or_else(usage_err)?;
                        i += 2;
                    }
                    "--policy" => {
                        options.policy = match rest.get(i + 1) {
                            Some(&"default") => PolicyFlag::Default,
                            Some(&"tuned") => PolicyFlag::Tuned,
                            _ => return Err(usage_err()),
                        };
                        i += 2;
                    }
                    "--format" => {
                        options.format = parse_format(rest.get(i + 1))?;
                        i += 2;
                    }
                    other if !other.starts_with("--") && input.is_none() => {
                        input = Some(Input::File(other.to_string()));
                        i += 1;
                    }
                    _ => return Err(usage_err()),
                }
            }
            let input = input.ok_or_else(usage_err)?;
            Ok(Command::Run { input, options })
        }
        "tune" => {
            let rest: Vec<&str> = it.collect();
            let mut input: Option<Input> = None;
            let mut options = TuneOptions::default();
            let parse_val = |rest: &[&str], i: usize| -> Result<String, SsError> {
                rest.get(i + 1).map(|s| s.to_string()).ok_or_else(usage_err)
            };
            let mut i = 0;
            while i < rest.len() {
                match rest[i] {
                    "--kernel" => {
                        let name = parse_val(&rest, i)?;
                        input = Some(Input::Catalogue(name));
                        i += 2;
                    }
                    "--budget-trials" => {
                        let v: usize = parse_val(&rest, i)?.parse().map_err(|_| usage_err())?;
                        if v < 1 {
                            return Err(usage_err());
                        }
                        options.budget_trials = Some(v);
                        i += 2;
                    }
                    "--repeats" => {
                        let v: usize = parse_val(&rest, i)?.parse().map_err(|_| usage_err())?;
                        if v < 1 {
                            return Err(usage_err());
                        }
                        options.repeats = v;
                        i += 2;
                    }
                    "--threads" => {
                        let v: usize = parse_val(&rest, i)?.parse().map_err(|_| usage_err())?;
                        if v < 1 {
                            return Err(usage_err());
                        }
                        options.threads = Some(v);
                        i += 2;
                    }
                    "--n" => {
                        let v: i64 = parse_val(&rest, i)?.parse().map_err(|_| usage_err())?;
                        if v < 1 {
                            return Err(usage_err());
                        }
                        options.scale = v;
                        i += 2;
                    }
                    "--seed" => {
                        options.seed = parse_val(&rest, i)?.parse().map_err(|_| usage_err())?;
                        i += 2;
                    }
                    "--trial-seed" => {
                        options.trial_seed =
                            parse_val(&rest, i)?.parse().map_err(|_| usage_err())?;
                        i += 2;
                    }
                    "--format" => {
                        options.format = parse_format(rest.get(i + 1))?;
                        i += 2;
                    }
                    other if !other.starts_with("--") && input.is_none() => {
                        input = Some(Input::File(other.to_string()));
                        i += 1;
                    }
                    _ => return Err(usage_err()),
                }
            }
            let input = input.ok_or_else(usage_err)?;
            Ok(Command::Tune { input, options })
        }
        "bench" => {
            let rest: Vec<&str> = it.collect();
            let mut options = BenchOptions::default();
            let parse_val = |rest: &[&str], i: usize| -> Result<String, SsError> {
                rest.get(i + 1).map(|s| s.to_string()).ok_or_else(usage_err)
            };
            let mut i = 0;
            while i < rest.len() {
                match rest[i] {
                    "--kernel" => {
                        options.kernel = parse_val(&rest, i)?;
                        i += 2;
                    }
                    "--n" => {
                        let v: i64 = parse_val(&rest, i)?.parse().map_err(|_| usage_err())?;
                        if v < 1 {
                            return Err(usage_err());
                        }
                        options.scale = v;
                        i += 2;
                    }
                    "--repeats" => {
                        let v: usize = parse_val(&rest, i)?.parse().map_err(|_| usage_err())?;
                        if v < 1 {
                            return Err(usage_err());
                        }
                        options.repeats = v;
                        i += 2;
                    }
                    "--out" => {
                        options.out = Some(parse_val(&rest, i)?);
                        i += 2;
                    }
                    _ => return Err(usage_err()),
                }
            }
            Ok(Command::Bench { options })
        }
        "analyze" | "trace" => {
            let rest: Vec<&str> = it.collect();
            let mut input: Option<Input> = None;
            let mut baseline = false;
            let mut no_source = false;
            let mut dump_bytecode = false;
            // The env flag serves wrappers that cannot edit the argument
            // vector (bench scripts, CI harnesses).
            let mut profile =
                cmd == "analyze" && std::env::var("SSPAR_PROFILE").is_ok_and(|v| v != "0");
            let mut opt_level = OptLevel::O1;
            let mut format = OutputFormat::Text;
            let mut i = 0;
            while i < rest.len() {
                match rest[i] {
                    "--kernel" => {
                        let name = rest.get(i + 1).ok_or_else(usage_err)?;
                        input = Some(Input::Catalogue(name.to_string()));
                        i += 2;
                    }
                    "--baseline" => {
                        baseline = true;
                        i += 1;
                    }
                    "--no-source" => {
                        no_source = true;
                        i += 1;
                    }
                    "--dump-bytecode" if cmd == "analyze" => {
                        dump_bytecode = true;
                        i += 1;
                    }
                    "--profile" if cmd == "analyze" => {
                        profile = true;
                        i += 1;
                    }
                    "--opt-level" if cmd == "analyze" => {
                        opt_level = rest
                            .get(i + 1)
                            .and_then(|v| OptLevel::from_flag(v))
                            .ok_or_else(usage_err)?;
                        i += 2;
                    }
                    "--format" if cmd == "analyze" => {
                        format = parse_format(rest.get(i + 1))?;
                        i += 2;
                    }
                    other if !other.starts_with("--") && input.is_none() => {
                        input = Some(Input::File(other.to_string()));
                        i += 1;
                    }
                    _ => return Err(usage_err()),
                }
            }
            let input = input.ok_or_else(usage_err)?;
            if cmd == "analyze" {
                Ok(Command::Analyze {
                    input,
                    baseline,
                    no_source,
                    dump_bytecode,
                    profile,
                    opt_level,
                    format,
                })
            } else {
                Ok(Command::Trace { input })
            }
        }
        "--help" | "-h" | "help" => Err(usage_err()),
        other => Err(SsError::Usage(format!(
            "unknown command '{other}'\n\n{}",
            usage()
        ))),
    }
}

/// Runs the parsed command, returning the text to print.
pub fn execute(cmd: &Command, reader: &dyn SourceReader) -> Result<String, SsError> {
    match cmd {
        Command::Study => Ok(study_text()),
        Command::Kernels => Ok(kernels_text()),
        Command::Engines { format } => Ok(engines_text(*format)),
        Command::Analyze {
            input,
            baseline,
            no_source,
            dump_bytecode,
            profile,
            opt_level,
            format,
        } => {
            let (name, source) = resolve_input(input, reader)?;
            analyze_text(
                &name,
                &source,
                *baseline,
                *no_source,
                *dump_bytecode,
                *profile,
                *opt_level,
                *format,
            )
        }
        Command::Trace { input } => {
            let (name, source) = resolve_input(input, reader)?;
            trace_text(&name, &source)
        }
        Command::Run { input, options } => {
            let (name, source) = resolve_input(input, reader)?;
            run_text(&name, &source, options)
        }
        Command::Tune { input, options } => {
            let (name, source) = resolve_input(input, reader)?;
            tune_text(&name, &source, options)
        }
        Command::Bench { options } => bench_text(options, reader),
        Command::Serve { options } => serve_text(options),
        Command::Request { line, addr } => request_text(line, addr),
    }
}

/// Runs the daemon in-process until a `shutdown` request drains it.  The
/// bound address goes to stderr immediately (stdout is the command's
/// *result*, which only exists once the daemon exits).
fn serve_text(options: &ServeOptions) -> Result<String, SsError> {
    let config = ss_daemon::DaemonConfig {
        addr: options.addr.clone(),
        workers: options.workers,
        shards: options.shards,
        queue: options.queue,
        cache_capacity: options.cache_capacity,
        cache_capacity_bytes: options.cache_capacity_bytes,
        ..ss_daemon::DaemonConfig::default()
    };
    let mut daemon = ss_daemon::start(config).map_err(|e| SsError::Io {
        path: options.addr.clone(),
        message: e.to_string(),
    })?;
    let addr = daemon.local_addr();
    eprintln!("sspard: listening on {addr}");
    daemon.join();
    Ok(format!("sspard: drained, listener {addr} closed\n"))
}

/// Sends one raw NDJSON line to a running daemon, returning the response
/// line (the op's stable JSON envelope) with a trailing newline.
fn request_text(line: &str, addr: &str) -> Result<String, SsError> {
    let mut response = ss_daemon::request(addr, line).map_err(|e| SsError::Io {
        path: addr.to_string(),
        message: e.to_string(),
    })?;
    response.push('\n');
    Ok(response)
}

/// Parses the arguments and runs the command in one step (what `main`
/// does).  Exit through [`SsError::exit_code`] on `Err`.
pub fn run(args: &[String], reader: &dyn SourceReader) -> Result<String, SsError> {
    execute(&parse_args(args)?, reader)
}

fn resolve_input(input: &Input, reader: &dyn SourceReader) -> Result<(String, String), SsError> {
    match input {
        Input::File(path) => Ok((
            path.clone(),
            reader.read(path).map_err(|message| SsError::Io {
                path: path.clone(),
                message,
            })?,
        )),
        Input::Catalogue(name) => {
            let kernel = ss_npb::study_kernels()
                .into_iter()
                .find(|k| k.name == name)
                .ok_or_else(|| SsError::UnknownKernel(name.clone()))?;
            Ok((kernel.name.to_string(), kernel.source.to_string()))
        }
    }
}

/// The verdict column of the text tables, derived from the report's own
/// classification.
fn verdict_cell(l: &ss_parallelizer::LoopReport) -> String {
    match l.verdict() {
        VerdictKind::Parallel => "PARALLEL".to_string(),
        VerdictKind::Reduction => {
            format!("PARALLEL (reduction {})", l.reduction_clause())
        }
        VerdictKind::Serial => "serial".to_string(),
    }
}

#[allow(clippy::too_many_arguments)]
fn analyze_text(
    name: &str,
    source: &str,
    baseline: bool,
    no_source: bool,
    dump_bytecode: bool,
    profile: bool,
    opt_level: OptLevel,
    format: OutputFormat,
) -> Result<String, SsError> {
    // One pipeline invocation — served from the session cache when this
    // process has compiled the identical source before — feeds the verdict
    // table, the facts and the bytecode dump, so the L<n> loop ids in the
    // listing always match and nothing below recompiles.
    let artifacts = session().artifacts(name, source)?;
    if format == OutputFormat::Json {
        let mut out = analysis_json(&artifacts);
        out.push('\n');
        return Ok(out);
    }
    let report = &artifacts.report;
    let mut out = String::new();
    out.push_str(&format!("== {name}: per-loop verdicts ==\n"));
    for l in &report.loops {
        out.push_str(&format!(
            "loop {:<3} (depth {}, index '{}'): {}\n",
            l.loop_id.0,
            l.depth,
            l.index_var,
            verdict_cell(l)
        ));
        if baseline {
            out.push_str(&format!(
                "    baseline (no index-array properties): {}\n",
                if l.baseline_parallel {
                    "parallel"
                } else {
                    "serial"
                }
            ));
        }
        for r in &l.reasons {
            out.push_str(&format!("    + {r}\n"));
        }
        for b in &l.blockers {
            out.push_str(&format!("    - {b}\n"));
        }
    }
    out.push_str("\n== derived index-array facts ==\n");
    out.push_str(&format!("{}\n", report.final_db));
    out.push_str(&format!(
        "\n== pipeline stages (analyze -> slots -> bytecode -> opt) ==\n{}\n",
        artifacts.stage_summary()
    ));
    if !no_source {
        out.push_str("\n== annotated source ==\n");
        out.push_str(&report.annotated_source);
        if !report.annotated_source.ends_with('\n') {
            out.push('\n');
        }
    }
    if dump_bytecode {
        out.push_str(&format!(
            "\n== register-machine bytecode ({opt_level}) ==\n"
        ));
        out.push_str(&artifacts.bytecode_at(opt_level).disassemble());
    }
    if profile {
        out.push_str(&profile_text(name, source, opt_level)?);
    }
    Ok(out)
}

/// Executes the program once (bytecode engine, serial, synthesized
/// inputs) with instruction-pair profiling on and renders the hottest
/// dynamically adjacent pairs — the fusion candidates a profile-guided
/// superinstruction pass would consider next.
fn profile_text(name: &str, source: &str, opt_level: OptLevel) -> Result<String, SsError> {
    const PROFILE_SCALE: i64 = 64;
    const TOP_PAIRS: usize = 12;
    reset_pair_counts();
    set_pair_profiling(true);
    let result = session().run(
        &RunRequest::new(name, source)
            .engine("bytecode")
            .opt_level(opt_level)
            .scale(PROFILE_SCALE)
            .mode(ExecutionMode::Serial),
    );
    set_pair_profiling(false);
    result?;
    let mut out = String::new();
    out.push_str(&format!(
        "\n== hottest instruction pairs ({opt_level}, dynamic order, n={PROFILE_SCALE}) ==\n"
    ));
    let pairs = top_instruction_pairs(TOP_PAIRS);
    if pairs.is_empty() {
        out.push_str("(no instruction pairs executed)\n");
    }
    for (prev, next, count) in pairs {
        out.push_str(&format!("{count:>12}  {prev} -> {next}\n"));
    }
    Ok(out)
}

fn trace_text(name: &str, source: &str) -> Result<String, SsError> {
    let program = parse_program(name, source)?;
    let analysis = analyze_program(&program);
    let mut out = String::new();
    out.push_str(&format!("== {name}: Phase 1 / Phase 2 trace ==\n"));
    let mut ids: Vec<LoopId> = analysis.collapsed.keys().copied().collect();
    ids.sort_by_key(|id| id.0);
    for id in ids {
        let collapsed = &analysis.collapsed[&id];
        out.push_str(&format!(
            "\nloop {} (index '{}'):\n",
            id.0, collapsed.index_var
        ));
        if let Some(p1) = analysis.phase1.get(&id) {
            out.push_str("  phase 1 (one iteration):\n");
            let mut scalars: Vec<_> = p1.scalars.iter().collect();
            scalars.sort_by(|a, b| a.0.cmp(b.0));
            for (name, range) in scalars {
                out.push_str(&format!("    {name}: {range}\n"));
            }
            for w in &p1.writes {
                out.push_str(&format!("    {}[{}] = {}\n", w.array, w.subscript, w.value));
            }
        }
        out.push_str("  phase 2 (whole loop):\n");
        let mut scalars: Vec<_> = collapsed.scalar_exit.iter().collect();
        scalars.sort_by(|a, b| a.0.cmp(b.0));
        for (name, range) in scalars {
            out.push_str(&format!("    {name}: {range}\n"));
        }
        for fact in &collapsed.array_facts {
            out.push_str(&format!("    {fact}\n"));
        }
        for a in &collapsed.clobbered_arrays {
            out.push_str(&format!("    {a}: ⊥ (clobbered)\n"));
        }
        for s in &collapsed.clobbered_scalars {
            out.push_str(&format!("    {s}: ⊥ (clobbered)\n"));
        }
    }
    out.push_str("\n== facts at end of program ==\n");
    out.push_str(&format!("{}\n", analysis.db));
    Ok(out)
}

/// Searches the policy space for one kernel, prints the trial table and
/// the winner, and leaves the winner persisted in the session cache —
/// `sspar run --policy tuned` on the same (program, input shape)
/// reapplies it without re-searching.
fn tune_text(name: &str, source: &str, options: &TuneOptions) -> Result<String, SsError> {
    let mut request = RunRequest::new(name, source)
        .scale(options.scale)
        .seed(options.seed);
    if let Some(threads) = options.threads {
        request = request.threads(threads);
    }
    let config = TunerConfig {
        budget_trials: options.budget_trials,
        repeats: options.repeats,
        seed: options.trial_seed,
        ..TunerConfig::default()
    };
    let outcome = session().tune(&request, &config)?;
    if options.format == OutputFormat::Json {
        let mut out = outcome.to_json();
        out.push('\n');
        return Ok(out);
    }
    let policy = &outcome.policy;
    let mut out = String::new();
    out.push_str(&format!(
        "== {name}: policy search at scale n={} seed={} (shape signature {:016x}) ==\n\n",
        options.scale, options.seed, outcome.signature
    ));
    out.push_str(&format!("{:<34} {:>12}\n", "policy", "median s"));
    for (i, t) in policy.trials.iter().enumerate() {
        let mut notes = Vec::new();
        if i == 0 {
            notes.push("default");
        }
        if t.point == policy.point {
            notes.push("winner");
        }
        out.push_str(&format!(
            "{:<34} {:>12.6}{}\n",
            t.point.label(),
            t.median_seconds,
            if notes.is_empty() {
                String::new()
            } else {
                format!("   <- {}", notes.join(", "))
            }
        ));
    }
    for p in &policy.pruned {
        out.push_str(&format!("pruned: {p}\n"));
    }
    out.push_str(&format!(
        "\nwinner: {} (median {:.6}s, {:.2}x vs default {:.6}s)\n",
        policy.point.label(),
        policy.median_seconds,
        policy.speedup_vs_default(),
        policy.default_median_seconds
    ));
    out.push_str(&format!(
        "provenance: {}\n",
        if outcome.cache_hit {
            "tuned-cache (persisted policy reapplied, no re-search)"
        } else {
            "tuned-search (fresh search, winner persisted)"
        }
    ));
    Ok(out)
}

/// Executes one catalogue kernel serially under every engine and
/// opt-level it supports and emits the per-leg medians as stable JSON —
/// the machine-readable counterpart of the `interp_exec` bench.
fn bench_text(options: &BenchOptions, reader: &dyn SourceReader) -> Result<String, SsError> {
    let (name, source) = resolve_input(&Input::Catalogue(options.kernel.clone()), reader)?;
    let mut entries = Vec::new();
    for engine in session().registry().iter() {
        for &level in engine.caps().opt_levels {
            let mut samples = Vec::new();
            for _ in 0..options.repeats.max(1) {
                let outcome = session().run(
                    &RunRequest::new(&name, &source)
                        .engine(engine.name())
                        .opt_level(level)
                        .scale(options.scale)
                        .mode(ExecutionMode::Serial),
                )?;
                let stats = outcome.serial.as_ref().expect("serial mode runs serially");
                samples.push(stats.total_seconds);
            }
            samples.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
            entries.push(json::object([
                ("engine", json::string(engine.name())),
                ("opt_level", json::string(&level.to_string())),
                ("median_seconds", json::number(samples[samples.len() / 2])),
            ]));
        }
    }
    let mut out = json::object([
        ("bench", json::string("interp_exec")),
        ("kernel", json::string(&name)),
        ("scale", json::number(options.scale as f64)),
        ("repeats", json::number(options.repeats as f64)),
        ("entries", json::array(entries)),
    ]);
    out.push('\n');
    if let Some(path) = &options.out {
        std::fs::write(path, &out).map_err(|e| SsError::Io {
            path: path.clone(),
            message: e.to_string(),
        })?;
    }
    Ok(out)
}

fn run_text(name: &str, source: &str, options: &RunOptions) -> Result<String, SsError> {
    // One session request runs the whole differential matrix off one
    // (cached) pipeline invocation — nothing below recompiles.
    let mut request = RunRequest::new(name, source)
        .scale(options.scale)
        .seed(options.seed)
        .schedule(options.schedule)
        .opt_level(options.opt_level)
        .baseline_inspector(options.baseline_inspector)
        .validation(ValidationMode::Differential);
    if options.policy == PolicyFlag::Tuned {
        request = request.policy(RunPolicy::Tuned);
    }
    if let Some(engine) = &options.engine {
        request = request.engine(engine.clone());
    }
    if let Some(threads) = options.threads {
        request = request.threads(threads);
    }
    let outcome = session().run(&request)?;
    if options.validate {
        outcome.ensure_validated()?;
    }
    if options.format == OutputFormat::Json {
        let mut out = outcome.to_json();
        out.push('\n');
        return Ok(out);
    }

    // Report the engine that actually executed: the parallel leg is
    // redirected under the inspector baseline, and opt-level-sensitive
    // engines show which stream they ran.
    let resolved = session().registry().get(&outcome.engine)?;
    let engine_name = if options.baseline_inspector {
        format!(
            "{} (inspector baseline)",
            outcome.parallel_engine.as_deref().unwrap_or("?")
        )
    } else if resolved.caps().opt_levels.len() > 1 {
        format!("{} ({})", outcome.engine, outcome.opt_level)
    } else {
        outcome.engine.clone()
    };
    let serial_stats = outcome.serial.as_ref().expect("differential runs serially");
    let parallel_stats = outcome
        .parallel
        .as_ref()
        .expect("differential runs in parallel");
    let mut out = String::new();
    out.push_str(&format!(
        "== {name}: executed with scale n={} seed={} on {} thread(s), {engine_name} engine ==\n",
        options.scale, options.seed, outcome.threads
    ));
    if outcome.policy != "default" {
        out.push_str(&format!(
            "policy: {} ({})\n",
            outcome.policy,
            outcome.policy_provenance.as_deref().unwrap_or("-")
        ));
    }
    out.push('\n');
    out.push_str(&format!(
        "{:<6} {:<7} {:<10} {:<18} {:>12} {:>12} {:>9}\n",
        "loop", "index", "verdict", "execution", "serial s", "parallel s", "speedup"
    ));
    for v in &outcome.verdicts {
        let verdict = match v.verdict {
            VerdictKind::Parallel => "PARALLEL",
            VerdictKind::Reduction => "REDUCTION",
            VerdictKind::Serial => "serial",
        };
        let (mode, inspected) = match parallel_stats.loops.get(&v.loop_id) {
            Some(s) => (
                match s.mode {
                    ExecMode::Serial => "serial".to_string(),
                    ExecMode::Parallel { threads, dynamic } => format!(
                        "{} x{threads} threads",
                        if dynamic { "dynamic" } else { "static" }
                    ),
                },
                s.inspector_conflict_free,
            ),
            // Inner loops of dispatched bodies are accounted to their
            // dispatched ancestor.
            None => ("(inside parallel)".to_string(), None),
        };
        let serial_s = serial_stats
            .loops
            .get(&v.loop_id)
            .map(|s| s.seconds)
            .unwrap_or(0.0);
        let parallel_s = parallel_stats
            .loops
            .get(&v.loop_id)
            .map(|s| s.seconds)
            .unwrap_or(0.0);
        let speedup = if parallel_s > 0.0 && parallel_stats.loops.contains_key(&v.loop_id) {
            format!("{:.2}x", serial_s / parallel_s)
        } else {
            "-".to_string()
        };
        out.push_str(&format!(
            "L{:<5} {:<7} {:<10} {:<18} {:>12.6} {:>12.6} {:>9}\n",
            v.loop_id.0, v.index_var, verdict, mode, serial_s, parallel_s, speedup
        ));
        if let Some((levels, avg_width)) = parallel_stats
            .loops
            .get(&v.loop_id)
            .and_then(|s| s.wavefront)
        {
            out.push_str(&format!(
                "       wavefront: {levels} level(s), avg width {avg_width:.1}\n"
            ));
        }
        if let Some(cf) = inspected {
            out.push_str(&format!(
                "       runtime inspector baseline: {}\n",
                if cf {
                    "would parallelize (conflict-free at runtime)"
                } else {
                    "refuses (cross-iteration conflicts observed)"
                }
            ));
        }
    }
    out.push_str(&format!(
        "\ntotal: serial {:.6}s, parallel {:.6}s, speedup {:.2}x\n",
        serial_stats.total_seconds,
        parallel_stats.total_seconds,
        outcome.speedup().unwrap_or(0.0)
    ));
    if let Some(v) = &outcome.validation {
        if v.heaps_match {
            out.push_str(&format!(
                "validation: PASS (reference and {} final heaps are bit-identical)\n",
                v.compared.join(", ")
            ));
        } else {
            out.push_str(
                "validation: FAIL (heaps diverge; rerun with --validate to exit nonzero)\n",
            );
            for m in &v.mismatches {
                out.push_str(&format!("  {m}\n"));
            }
        }
    }
    Ok(out)
}

fn engines_text(format: OutputFormat) -> String {
    let registry = session().registry();
    if format == OutputFormat::Json {
        let mut out = registry_json(registry);
        out.push('\n');
        return out;
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:<8} {:<55} capabilities\n",
        "engine", "default", "description"
    ));
    for (i, e) in registry.iter().enumerate() {
        let caps = e.caps();
        let mut flags = Vec::new();
        if caps.reference {
            flags.push("reference".to_string());
        }
        if caps.reductions {
            flags.push("reductions".to_string());
        }
        if caps.local_arrays {
            flags.push("local-arrays".to_string());
        }
        if caps.inspector_baseline {
            flags.push("inspector-baseline".to_string());
        }
        if caps.persistent_team {
            flags.push("persistent-team".to_string());
        }
        flags.push(format!(
            "opt-levels:{}",
            caps.opt_levels
                .iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join("/")
        ));
        out.push_str(&format!(
            "{:<10} {:<8} {:<55} {}\n",
            e.name(),
            if i == 0 { "*" } else { "" },
            e.description(),
            flags.join(", ")
        ));
    }
    out
}

fn study_text() -> String {
    let inputs: Vec<StudyInput> = ss_npb::study_kernels()
        .into_iter()
        .map(|k| StudyInput {
            name: k.name.to_string(),
            program: k.program.to_string(),
            suite: format!("{:?}", k.suite),
            pattern: k.class.label().to_string(),
            source: k.source.to_string(),
            target_loop: k.target_loop,
        })
        .collect();
    run_study(&inputs).render()
}

fn kernels_text() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:<26} {:<30} {:>11}\n",
        "kernel", "program", "pattern", "target loop"
    ));
    for k in ss_npb::study_kernels() {
        out.push_str(&format!(
            "{:<24} {:<26} {:<30} {:>11}\n",
            k.name,
            k.program,
            k.class.label(),
            k.target_loop
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    struct MapReader(HashMap<String, String>);

    impl SourceReader for MapReader {
        fn read(&self, path: &str) -> Result<String, String> {
            self.0
                .get(path)
                .cloned()
                .ok_or_else(|| format!("no such file: {path}"))
        }
    }

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    const FIG2: &str = r#"
        for (e = 0; e < nelt; e++) { mt_to_id[e] = e; }
        for (miel = 0; miel < nelt; miel++) {
            iel = mt_to_id[miel];
            id_to_mt[iel] = miel;
        }
    "#;

    #[test]
    fn parse_args_recognizes_every_command() {
        assert_eq!(parse_args(&args(&["study"])).unwrap(), Command::Study);
        assert_eq!(parse_args(&args(&["kernels"])).unwrap(), Command::Kernels);
        assert_eq!(
            parse_args(&args(&["engines"])).unwrap(),
            Command::Engines {
                format: OutputFormat::Text
            }
        );
        assert_eq!(
            parse_args(&args(&["engines", "--format", "json"])).unwrap(),
            Command::Engines {
                format: OutputFormat::Json
            }
        );
        assert_eq!(
            parse_args(&args(&["analyze", "k.c"])).unwrap(),
            Command::Analyze {
                input: Input::File("k.c".into()),
                baseline: false,
                no_source: false,
                dump_bytecode: false,
                profile: false,
                opt_level: OptLevel::O1,
                format: OutputFormat::Text,
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "analyze",
                "--kernel",
                "fig9_csr_product",
                "--baseline",
                "--no-source",
                "--dump-bytecode",
                "--profile",
                "--opt-level",
                "0",
                "--format",
                "json"
            ]))
            .unwrap(),
            Command::Analyze {
                input: Input::Catalogue("fig9_csr_product".into()),
                baseline: true,
                no_source: true,
                dump_bytecode: true,
                profile: true,
                opt_level: OptLevel::O0,
                format: OutputFormat::Json,
            }
        );
        assert_eq!(
            parse_args(&args(&["trace", "k.c"])).unwrap(),
            Command::Trace {
                input: Input::File("k.c".into())
            }
        );
    }

    #[test]
    fn parse_args_rejects_bad_invocations() {
        assert!(matches!(parse_args(&[]), Err(SsError::Usage(_))));
        assert!(matches!(
            parse_args(&args(&["frobnicate"])),
            Err(SsError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&args(&["analyze"])),
            Err(SsError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&args(&["analyze", "--kernel"])),
            Err(SsError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&args(&["analyze", "k.c", "--bogus"])),
            Err(SsError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&args(&["analyze", "k.c", "--format", "yaml"])),
            Err(SsError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&args(&["engines", "--bogus"])),
            Err(SsError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&args(&["--help"])),
            Err(SsError::Usage(_))
        ));
    }

    #[test]
    fn analyze_reports_the_figure2_verdict() {
        let reader = MapReader(HashMap::from([("fig2.c".to_string(), FIG2.to_string())]));
        let out = run(&args(&["analyze", "fig2.c", "--baseline"]), &reader).unwrap();
        assert!(out.contains("loop 1"));
        assert!(out.contains("PARALLEL"));
        assert!(out.contains("baseline (no index-array properties): serial"));
        assert!(out.contains("#pragma omp parallel for"));
        assert!(out.contains("mt_to_id"));
    }

    #[test]
    fn analyze_format_json_emits_the_stable_schema() {
        let reader = MapReader(HashMap::from([("fig2.c".to_string(), FIG2.to_string())]));
        let out = run(&args(&["analyze", "fig2.c", "--format", "json"]), &reader).unwrap();
        for key in [
            "\"program\":\"fig2.c\"",
            "\"verdicts\":[",
            "\"verdict\":\"parallel\"",
            "\"newly_enabled\":true",
            "\"stages\":[{\"stage\":\"analyze\"",
            "\"annotated_source\":",
            "#pragma omp parallel for",
        ] {
            assert!(out.contains(key), "missing {key} in {out}");
        }
        assert!(out.ends_with('\n'));
        // No text-table artifacts in the JSON output.
        assert!(!out.contains("== "));
    }

    #[test]
    fn engines_lists_the_registry_with_capabilities() {
        let reader = MapReader(HashMap::new());
        let out = run(&args(&["engines"]), &reader).unwrap();
        // Every registered engine appears, flagged from its own caps —
        // the list cannot drift from what --engine accepts.
        for e in session().registry().iter() {
            assert!(out.contains(e.name()), "{out}");
            assert!(out.contains(e.description()), "{out}");
        }
        assert!(out.contains("reference"));
        assert!(out.contains("persistent-team"));
        assert!(out.contains("opt-levels:O0/O1"));
        let json = run(&args(&["engines", "--format", "json"]), &reader).unwrap();
        assert!(json.contains("\"engines\":["), "{json}");
        assert!(json.contains("\"default\":true"), "{json}");
        assert!(json.contains("\"opt_levels\":[\"O0\",\"O1\"]"), "{json}");
    }

    #[test]
    fn no_source_suppresses_the_annotated_listing() {
        let reader = MapReader(HashMap::from([("fig2.c".to_string(), FIG2.to_string())]));
        let out = run(&args(&["analyze", "fig2.c", "--no-source"]), &reader).unwrap();
        assert!(!out.contains("annotated source"));
        assert!(!out.contains("#pragma"));
    }

    #[test]
    fn analyze_by_catalogue_name_works_and_unknown_names_fail() {
        let reader = MapReader(HashMap::new());
        let out = run(&args(&["analyze", "--kernel", "fig9_csr_product"]), &reader).unwrap();
        assert!(out.contains("rowptr"));
        assert!(out.contains("PARALLEL"));
        let err = run(&args(&["analyze", "--kernel", "not_a_kernel"]), &reader).unwrap_err();
        assert!(matches!(err, SsError::UnknownKernel(_)));
    }

    #[test]
    fn dump_bytecode_prints_the_register_machine_listing() {
        let reader = MapReader(HashMap::new());
        let out = run(
            &args(&[
                "analyze",
                "--kernel",
                "fig9_csr_product",
                "--no-source",
                "--dump-bytecode",
            ]),
            &reader,
        )
        .unwrap();
        assert!(
            out.contains("== register-machine bytecode (O1) =="),
            "{out}"
        );
        assert!(out.contains("const["), "{out}");
        assert!(out.contains("for      L"), "{out}");
        // The default (O1) listing carries the fused superinstructions; the
        // O0 listing carries none.
        assert!(out.contains("cmpbr"), "{out}");
        let o0 = run(
            &args(&[
                "analyze",
                "--kernel",
                "fig9_csr_product",
                "--no-source",
                "--dump-bytecode",
                "--opt-level",
                "0",
            ]),
            &reader,
        )
        .unwrap();
        assert!(o0.contains("== register-machine bytecode (O0) =="), "{o0}");
        assert!(!o0.contains("cmpbr"), "{o0}");
        assert!(!o0.contains("load2"), "{o0}");
        // trace does not accept the flags
        for flag in ["--dump-bytecode", "--opt-level", "--profile"] {
            assert!(matches!(
                run(
                    &args(&["trace", "--kernel", "fig9_csr_product", flag]),
                    &reader
                ),
                Err(SsError::Usage(_))
            ));
        }
    }

    #[test]
    fn profile_prints_the_hottest_instruction_pairs() {
        let reader = MapReader(HashMap::new());
        let out = run(
            &args(&[
                "analyze",
                "--kernel",
                "fig9_csr_product",
                "--no-source",
                "--profile",
            ]),
            &reader,
        )
        .unwrap();
        assert!(out.contains("== hottest instruction pairs (O1"), "{out}");
        // A counted loop's hot path necessarily executes adjacent pairs;
        // at least one `prev -> next` line with a count must appear.
        // (Counts are process-wide, so only presence is asserted.)
        assert!(out.contains(" -> "), "{out}");
    }

    #[test]
    fn analyze_prints_the_pipeline_stage_trace() {
        let reader = MapReader(HashMap::new());
        let out = run(
            &args(&["analyze", "--kernel", "fig9_csr_product", "--no-source"]),
            &reader,
        )
        .unwrap();
        assert!(out.contains("== pipeline stages"), "{out}");
        for stage in ["analyze", "slots", "bytecode", "opt"] {
            assert!(out.contains(stage), "{out}");
        }
    }

    #[test]
    fn trace_shows_the_section_3_5_derivation() {
        let reader = MapReader(HashMap::new());
        let out = run(&args(&["trace", "--kernel", "fig9_csr_product"]), &reader).unwrap();
        assert!(out.contains("phase 1 (one iteration)"));
        assert!(out.contains("phase 2 (whole loop)"));
        assert!(out.contains("Monotonic_inc"));
        assert!(out.contains("count"));
    }

    #[test]
    fn study_and_kernels_render_the_catalogue() {
        let reader = MapReader(HashMap::new());
        let study = run(&args(&["study"]), &reader).unwrap();
        assert!(study.contains("fig2_ua_transfer"));
        assert!(study.contains("parallelized by the extended analysis"));
        let kernels = run(&args(&["kernels"]), &reader).unwrap();
        assert!(kernels.contains("csparse_ipvec"));
        assert!(kernels.contains("is_bucket_traversal"));
    }

    #[test]
    fn parse_args_recognizes_serve_and_request() {
        assert_eq!(
            parse_args(&args(&["serve"])).unwrap(),
            Command::Serve {
                options: ServeOptions::default()
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "2",
                "--shards",
                "4",
                "--queue",
                "8",
                "--cache-capacity",
                "16",
                "--cache-capacity-bytes",
                "1048576",
            ]))
            .unwrap(),
            Command::Serve {
                options: ServeOptions {
                    addr: "127.0.0.1:0".into(),
                    workers: 2,
                    shards: 4,
                    queue: 8,
                    cache_capacity: Some(16),
                    cache_capacity_bytes: Some(1048576),
                }
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "request",
                r#"{"op":"stats"}"#,
                "--addr",
                "127.0.0.1:9"
            ]))
            .unwrap(),
            Command::Request {
                line: r#"{"op":"stats"}"#.into(),
                addr: "127.0.0.1:9".into(),
            }
        );
        for bad in [
            vec!["serve", "--workers"],
            vec!["serve", "--workers", "x"],
            vec!["serve", "--bogus"],
            vec!["request"],
            vec!["request", "{}", "{}"],
            vec!["request", "{}", "--addr"],
        ] {
            assert!(
                matches!(parse_args(&args(&bad)), Err(SsError::Usage(_))),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn request_round_trips_against_a_live_daemon() {
        let daemon = ss_daemon::start(ss_daemon::DaemonConfig::default()).expect("bind");
        let addr = daemon.local_addr().to_string();
        let reader = MapReader(HashMap::new());
        let out = run(
            &args(&["request", r#"{"op":"engines"}"#, "--addr", &addr]),
            &reader,
        )
        .unwrap();
        assert!(out.starts_with(r#"{"ok":true"#), "{out}");
        assert!(out.contains("\"bytecode\""), "{out}");
        assert!(out.ends_with('\n'));

        // The daemon's run response and `sspar run --format json` emit
        // the same schema through the same serializer.
        let daemon_run = run(
            &args(&[
                "request",
                r#"{"op":"run","kernel":"fig2_ua_transfer","threads":2,"scale":64}"#,
                "--addr",
                &addr,
            ]),
            &reader,
        )
        .unwrap();
        for key in [
            "\"program\":\"fig2_ua_transfer\"",
            "\"engine\":\"bytecode\"",
            "\"stages\":[",
            "\"dispatched\":[",
        ] {
            assert!(daemon_run.contains(key), "missing {key} in {daemon_run}");
        }

        // Unreachable daemons surface as Io with exit code 3.
        drop(daemon);
        let err = run(
            &args(&["request", r#"{"op":"stats"}"#, "--addr", "127.0.0.1:1"]),
            &reader,
        )
        .unwrap_err();
        assert!(matches!(err, SsError::Io { .. }));
        assert_eq!(err.exit_code(), 3);
    }

    #[test]
    fn parse_args_recognizes_run_with_options() {
        assert_eq!(
            parse_args(&args(&[
                "run",
                "k.c",
                "--threads",
                "4",
                "--n",
                "128",
                "--seed",
                "9",
                "--validate",
                "--baseline",
                "inspector",
                "--schedule",
                "dynamic",
                "--engine",
                "ast",
                "--opt-level",
                "0",
                "--policy",
                "tuned",
                "--format",
                "json"
            ]))
            .unwrap(),
            Command::Run {
                input: Input::File("k.c".into()),
                options: RunOptions {
                    threads: Some(4),
                    scale: 128,
                    seed: 9,
                    validate: true,
                    baseline_inspector: true,
                    schedule: ScheduleChoice::Dynamic,
                    engine: Some("ast".into()),
                    opt_level: OptLevel::O0,
                    policy: PolicyFlag::Tuned,
                    format: OutputFormat::Json,
                },
            }
        );
        assert_eq!(
            parse_args(&args(&["run", "--kernel", "fig2_ua_transfer"])).unwrap(),
            Command::Run {
                input: Input::Catalogue("fig2_ua_transfer".into()),
                options: RunOptions::default(),
            }
        );
        for bad in [
            vec!["run"],
            vec!["run", "k.c", "--threads"],
            vec!["run", "k.c", "--threads", "0"],
            vec!["run", "k.c", "--n", "0"],
            vec!["run", "k.c", "--baseline", "lrpd"],
            vec!["run", "k.c", "--schedule", "guided"],
            vec!["run", "k.c", "--engine"],
            vec!["run", "k.c", "--engine", "--validate"],
            vec!["run", "k.c", "--opt-level", "2"],
            vec!["run", "k.c", "--opt-level"],
            vec!["run", "k.c", "--policy", "fastest"],
            vec!["run", "k.c", "--policy"],
            vec!["run", "k.c", "--format", "xml"],
        ] {
            assert!(
                matches!(parse_args(&args(&bad)), Err(SsError::Usage(_))),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn parse_args_recognizes_tune_and_bench() {
        assert_eq!(
            parse_args(&args(&["tune", "--kernel", "sptrsv_levels"])).unwrap(),
            Command::Tune {
                input: Input::Catalogue("sptrsv_levels".into()),
                options: TuneOptions::default(),
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "tune",
                "k.c",
                "--budget-trials",
                "6",
                "--repeats",
                "2",
                "--threads",
                "2",
                "--n",
                "64",
                "--seed",
                "7",
                "--trial-seed",
                "3",
                "--format",
                "json"
            ]))
            .unwrap(),
            Command::Tune {
                input: Input::File("k.c".into()),
                options: TuneOptions {
                    budget_trials: Some(6),
                    repeats: 2,
                    threads: Some(2),
                    scale: 64,
                    seed: 7,
                    trial_seed: 3,
                    format: OutputFormat::Json,
                },
            }
        );
        assert_eq!(
            parse_args(&args(&["bench"])).unwrap(),
            Command::Bench {
                options: BenchOptions::default()
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "bench",
                "--kernel",
                "fig2_ua_transfer",
                "--n",
                "32",
                "--repeats",
                "1",
                "--out",
                "BENCH_interp.json"
            ]))
            .unwrap(),
            Command::Bench {
                options: BenchOptions {
                    kernel: "fig2_ua_transfer".into(),
                    scale: 32,
                    repeats: 1,
                    out: Some("BENCH_interp.json".into()),
                }
            }
        );
        for bad in [
            vec!["tune"],
            vec!["tune", "k.c", "--budget-trials", "0"],
            vec!["tune", "k.c", "--repeats", "x"],
            vec!["tune", "k.c", "--format", "xml"],
            vec!["tune", "k.c", "--bogus"],
            vec!["bench", "--n", "0"],
            vec!["bench", "--out"],
            vec!["bench", "--bogus"],
        ] {
            assert!(
                matches!(parse_args(&args(&bad)), Err(SsError::Usage(_))),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn tune_searches_then_tuned_runs_reapply_the_persisted_policy() {
        let reader = MapReader(HashMap::new());
        let tune_args = args(&[
            "tune",
            "--kernel",
            "fig2_ua_transfer",
            "--n",
            "48",
            "--threads",
            "2",
            "--repeats",
            "1",
            "--budget-trials",
            "4",
        ]);
        let first = run(&tune_args, &reader).unwrap();
        assert!(first.contains("policy search"), "{first}");
        assert!(first.contains("<- default"), "{first}");
        assert!(first.contains("winner:"), "{first}");
        // The same (program, input shape) reapplies the persisted winner
        // without re-searching.
        let second = run(&tune_args, &reader).unwrap();
        assert!(second.contains("tuned-cache"), "{second}");
        // `run --policy tuned` applies it and reports the provenance.
        let run_out = run(
            &args(&[
                "run",
                "--kernel",
                "fig2_ua_transfer",
                "--n",
                "48",
                "--threads",
                "2",
                "--policy",
                "tuned",
                "--validate",
            ]),
            &reader,
        )
        .unwrap();
        assert!(run_out.contains("policy: tuned (tuned-cache)"), "{run_out}");
        assert!(run_out.contains("validation: PASS"), "{run_out}");
    }

    #[test]
    fn tune_format_json_emits_the_stable_outcome() {
        let reader = MapReader(HashMap::new());
        let out = run(
            &args(&[
                "tune",
                "--kernel",
                "csparse_ipvec",
                "--n",
                "40",
                "--repeats",
                "1",
                "--budget-trials",
                "3",
                "--format",
                "json",
            ]),
            &reader,
        )
        .unwrap();
        for key in [
            "\"program\":\"csparse_ipvec\"",
            "\"signature\":\"",
            "\"provenance\":\"tuned-",
            "\"winner\":{",
            "\"default_median_seconds\":",
            "\"speedup_vs_default\":",
            "\"trials\":[",
            "\"pruned\":[",
        ] {
            assert!(out.contains(key), "missing {key} in {out}");
        }
        assert!(out.ends_with('\n'));
    }

    #[test]
    fn bench_emits_per_engine_medians() {
        let reader = MapReader(HashMap::new());
        let out = run(
            &args(&[
                "bench",
                "--kernel",
                "fig2_ua_transfer",
                "--n",
                "32",
                "--repeats",
                "1",
            ]),
            &reader,
        )
        .unwrap();
        for key in [
            "\"bench\":\"interp_exec\"",
            "\"kernel\":\"fig2_ua_transfer\"",
            "\"entries\":[",
            "\"engine\":\"bytecode\"",
            "\"opt_level\":\"O0\"",
            "\"opt_level\":\"O1\"",
            "\"median_seconds\":",
        ] {
            assert!(out.contains(key), "missing {key} in {out}");
        }
        // Every registered engine contributes at least one leg.
        for e in session().registry().iter() {
            assert!(
                out.contains(&format!("\"engine\":\"{}\"", e.name())),
                "{out}"
            );
        }
    }

    #[test]
    fn run_executes_and_validates_the_figure2_kernel() {
        let reader = MapReader(HashMap::new());
        let out = run(
            &args(&[
                "run",
                "--kernel",
                "fig2_ua_transfer",
                "--threads",
                "2",
                "--n",
                "200",
                "--validate",
            ]),
            &reader,
        )
        .unwrap();
        assert!(out.contains("PARALLEL"));
        assert!(out.contains("threads"));
        assert!(out.contains("validation: PASS"));
        assert!(out.contains("speedup"));
    }

    #[test]
    fn run_validates_under_every_engine_and_opt_level() {
        let reader = MapReader(HashMap::new());
        for (engine_args, shown) in [
            (vec!["--engine", "bytecode"], "bytecode (O1) engine"),
            (
                vec!["--engine", "bytecode", "--opt-level", "0"],
                "bytecode (O0) engine",
            ),
            (vec!["--engine", "threaded"], "threaded (O1) engine"),
            (
                vec!["--engine", "threaded", "--opt-level", "0"],
                "threaded (O0) engine",
            ),
            (vec!["--engine", "compiled"], "compiled engine"),
            (vec!["--engine", "ast"], "ast engine"),
        ] {
            let mut a = vec![
                "run",
                "--kernel",
                "fig9_csr_product",
                "--threads",
                "2",
                "--n",
                "120",
                "--validate",
            ];
            a.extend(engine_args);
            let out = run(&args(&a), &reader).unwrap();
            assert!(out.contains(shown), "{out}");
            assert!(out.contains("validation: PASS"), "{shown}: {out}");
        }
    }

    #[test]
    fn run_rejects_unknown_engines_with_the_registered_list() {
        let reader = MapReader(HashMap::new());
        let err = run(
            &args(&["run", "--kernel", "fig2_ua_transfer", "--engine", "jit"]),
            &reader,
        )
        .unwrap_err();
        match &err {
            SsError::UnknownEngine { name, available } => {
                assert_eq!(name, "jit");
                assert_eq!(
                    available,
                    &session()
                        .registry()
                        .names()
                        .iter()
                        .map(|n| n.to_string())
                        .collect::<Vec<_>>()
                );
            }
            other => panic!("expected UnknownEngine, got {other:?}"),
        }
        assert_eq!(err.exit_code(), 5);
    }

    #[test]
    fn run_format_json_emits_the_run_outcome() {
        let reader = MapReader(HashMap::new());
        let out = run(
            &args(&[
                "run",
                "--kernel",
                "fig2_ua_transfer",
                "--threads",
                "2",
                "--n",
                "64",
                "--format",
                "json",
            ]),
            &reader,
        )
        .unwrap();
        for key in [
            "\"program\":\"fig2_ua_transfer\"",
            "\"engine\":\"bytecode\"",
            "\"validation\":{\"heaps_match\":true",
            "\"dispatched\":[",
        ] {
            assert!(out.contains(key), "missing {key} in {out}");
        }
    }

    #[test]
    fn analyze_and_run_report_reduction_verdicts() {
        let reader = MapReader(HashMap::new());
        let out = run(
            &args(&["analyze", "--kernel", "cg_norm_reduction"]),
            &reader,
        )
        .unwrap();
        assert!(out.contains("PARALLEL (reduction +:total)"), "{out}");
        assert!(out.contains("#pragma omp parallel for reduction(+:total)"));

        let out = run(
            &args(&[
                "run",
                "--kernel",
                "cg_norm_reduction",
                "--threads",
                "2",
                "--n",
                "100",
                "--validate",
            ]),
            &reader,
        )
        .unwrap();
        assert!(out.contains("REDUCTION"), "{out}");
        assert!(out.contains("validation: PASS"));
    }

    #[test]
    fn run_reports_inspector_baseline_on_serial_loops() {
        let reader = MapReader(HashMap::from([(
            "hist.c".to_string(),
            "for (i = 0; i < n; i++) { h[idx[i]] = i; }".to_string(),
        )]));
        let out = run(
            &args(&[
                "run",
                "hist.c",
                "--baseline",
                "inspector",
                "--n",
                "64",
                "--validate",
            ]),
            &reader,
        )
        .unwrap();
        assert!(out.contains("runtime inspector baseline"));
        assert!(out.contains("(inspector baseline)"));
        assert!(out.contains("validation: PASS"));
    }

    #[test]
    fn run_surfaces_execution_errors() {
        let reader = MapReader(HashMap::from([(
            "oob.c".to_string(),
            "x = a[0 - 5];".to_string(),
        )]));
        assert!(matches!(
            run(&args(&["run", "oob.c"]), &reader),
            Err(SsError::Runtime(_))
        ));
    }

    #[test]
    fn missing_files_and_parse_errors_are_reported() {
        let reader = MapReader(HashMap::from([(
            "bad.c".to_string(),
            "for (i = 0 i < n; i++) {}".to_string(),
        )]));
        assert!(matches!(
            run(&args(&["analyze", "nope.c"]), &reader),
            Err(SsError::Io { .. })
        ));
        assert!(matches!(
            run(&args(&["analyze", "bad.c"]), &reader),
            Err(SsError::Parse(_))
        ));
        assert!(matches!(
            run(&args(&["trace", "bad.c"]), &reader),
            Err(SsError::Parse(_))
        ));
    }

    /// The satellite fix this PR pins: every failure class exits with its
    /// own stable code, parse errors and runtime errors included — they
    /// used to share exit 1.
    #[test]
    fn exit_codes_are_routed_through_ss_error() {
        let reader = MapReader(HashMap::from([
            ("bad.c".to_string(), "for (i = 0 i < n; i++) {}".to_string()),
            ("oob.c".to_string(), "x = a[0 - 5];".to_string()),
        ]));
        let cases: Vec<(Vec<&str>, i32)> = vec![
            (vec!["frobnicate"], 2),                  // usage
            (vec!["analyze", "nope.c"], 3),           // io
            (vec!["analyze", "bad.c"], 4),            // parse
            (vec!["run", "bad.c"], 4),                // parse via run
            (vec!["analyze", "--kernel", "nope"], 5), // unknown kernel
            (
                vec!["run", "--kernel", "fig2_ua_transfer", "--engine", "jit"],
                5,
            ), // unknown engine
            (vec!["run", "oob.c"], 7),                // runtime
        ];
        for (argv, code) in cases {
            let err = run(&args(&argv), &reader).unwrap_err();
            assert_eq!(err.exit_code(), code, "{argv:?} -> {err}");
        }
        // A parse error's span survives to the CLI surface.
        let err = run(&args(&["analyze", "bad.c"]), &reader).unwrap_err();
        assert!(err.span().is_some());
    }
}
