//! The index-array property lattice.
//!
//! Section 2 of the paper identifies the properties of subscript arrays that
//! make enclosing loops parallelizable: injectivity, (strict) monotonicity,
//! monotonic differences, injective/monotonic subsets.  This module defines
//! those properties, their implication ordering (e.g. strict monotonicity
//! implies injectivity), and sets of properties closed under implication.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A property of (a section of) an integer array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ArrayProperty {
    /// `a[i] <= a[j]` for all `i < j` (non-strict).
    MonotonicInc,
    /// `a[i] >= a[j]` for all `i < j` (non-strict).
    MonotonicDec,
    /// `a[i] < a[j]` for all `i < j`.
    StrictMonotonicInc,
    /// `a[i] > a[j]` for all `i < j`.
    StrictMonotonicDec,
    /// `a[i] != a[j]` for all `i != j`.
    Injective,
    /// `a[i] == i` for all `i` in the section.
    Identity,
    /// Every element in the section is `>= 0`.
    NonNegative,
}

impl ArrayProperty {
    /// Properties directly implied by `self` (one step of the implication
    /// relation; inserting into a `PropertySet` applies the transitive
    /// closure).
    pub fn direct_implications(&self) -> &'static [ArrayProperty] {
        use ArrayProperty::*;
        match self {
            Identity => &[StrictMonotonicInc, NonNegative],
            StrictMonotonicInc => &[MonotonicInc, Injective],
            StrictMonotonicDec => &[MonotonicDec, Injective],
            MonotonicInc | MonotonicDec | Injective | NonNegative => &[],
        }
    }

    /// True if `self` implies `other` (reflexive-transitively).
    pub fn implies(&self, other: ArrayProperty) -> bool {
        if *self == other {
            return true;
        }
        self.direct_implications().iter().any(|p| p.implies(other))
    }

    /// All properties, useful for exhaustive testing.
    pub fn all() -> &'static [ArrayProperty] {
        use ArrayProperty::*;
        &[
            MonotonicInc,
            MonotonicDec,
            StrictMonotonicInc,
            StrictMonotonicDec,
            Injective,
            Identity,
            NonNegative,
        ]
    }
}

impl fmt::Display for ArrayProperty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArrayProperty::MonotonicInc => "Monotonic_inc",
            ArrayProperty::MonotonicDec => "Monotonic_dec",
            ArrayProperty::StrictMonotonicInc => "Strict_monotonic_inc",
            ArrayProperty::StrictMonotonicDec => "Strict_monotonic_dec",
            ArrayProperty::Injective => "Injective",
            ArrayProperty::Identity => "Identity",
            ArrayProperty::NonNegative => "Non_negative",
        };
        write!(f, "{s}")
    }
}

/// A set of array properties, automatically closed under implication.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PropertySet {
    props: BTreeSet<ArrayProperty>,
}

impl PropertySet {
    /// The empty set (no known properties).
    pub fn empty() -> PropertySet {
        PropertySet::default()
    }

    /// A set containing `p` and everything it implies.
    pub fn single(p: ArrayProperty) -> PropertySet {
        let mut s = PropertySet::empty();
        s.insert(p);
        s
    }

    /// Builds a set from several properties.
    #[allow(clippy::should_implement_trait)] // bitset builder, not FromIterator
    pub fn from_iter(iter: impl IntoIterator<Item = ArrayProperty>) -> PropertySet {
        let mut s = PropertySet::empty();
        for p in iter {
            s.insert(p);
        }
        s
    }

    /// Inserts a property together with its implication closure.
    pub fn insert(&mut self, p: ArrayProperty) {
        if self.props.insert(p) {
            for q in p.direct_implications() {
                self.insert(*q);
            }
        }
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.props.is_empty()
    }

    /// True if `p` is known to hold (directly or by implication closure).
    pub fn has(&self, p: ArrayProperty) -> bool {
        self.props.contains(&p)
    }

    /// Number of properties in the (closed) set.
    pub fn len(&self) -> usize {
        self.props.len()
    }

    /// Iterates the properties in a deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = ArrayProperty> + '_ {
        self.props.iter().copied()
    }

    /// The *meet*: properties guaranteed on both sides.  Used when merging
    /// facts from different control-flow paths — only what holds on every
    /// path survives.
    pub fn meet(&self, other: &PropertySet) -> PropertySet {
        PropertySet {
            props: self.props.intersection(&other.props).copied().collect(),
        }
    }

    /// The *join*: union of the two property sets (closed by construction).
    /// Used when independent analyses contribute facts about the same array
    /// section.
    pub fn join(&self, other: &PropertySet) -> PropertySet {
        let mut out = self.clone();
        for p in other.iter() {
            out.insert(p);
        }
        out
    }
}

impl fmt::Display for PropertySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.props.is_empty() {
            return write!(f, "{{}}");
        }
        let names: Vec<String> = self.props.iter().map(|p| p.to_string()).collect();
        write!(f, "{{{}}}", names.join(", "))
    }
}

impl FromIterator<ArrayProperty> for PropertySet {
    fn from_iter<T: IntoIterator<Item = ArrayProperty>>(iter: T) -> Self {
        PropertySet::from_iter(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ArrayProperty::*;

    #[test]
    fn implication_chains() {
        assert!(Identity.implies(StrictMonotonicInc));
        assert!(Identity.implies(MonotonicInc));
        assert!(Identity.implies(Injective));
        assert!(Identity.implies(NonNegative));
        assert!(StrictMonotonicInc.implies(Injective));
        assert!(StrictMonotonicInc.implies(MonotonicInc));
        assert!(StrictMonotonicDec.implies(Injective));
        assert!(StrictMonotonicDec.implies(MonotonicDec));
        assert!(!MonotonicInc.implies(Injective));
        assert!(!Injective.implies(MonotonicInc));
        assert!(!MonotonicInc.implies(MonotonicDec));
        // reflexivity
        for p in ArrayProperty::all() {
            assert!(p.implies(*p));
        }
    }

    #[test]
    fn insertion_closes_under_implication() {
        let s = PropertySet::single(Identity);
        assert!(s.has(StrictMonotonicInc));
        assert!(s.has(MonotonicInc));
        assert!(s.has(Injective));
        assert!(s.has(NonNegative));
        assert!(!s.has(MonotonicDec));
        assert_eq!(s.len(), 5);
        let s = PropertySet::single(MonotonicInc);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn meet_keeps_only_common_properties() {
        let a = PropertySet::single(StrictMonotonicInc); // {SMI, MI, Inj}
        let b = PropertySet::single(StrictMonotonicDec); // {SMD, MD, Inj}
        let m = a.meet(&b);
        assert!(m.has(Injective));
        assert!(!m.has(MonotonicInc));
        assert!(!m.has(MonotonicDec));
        assert_eq!(m.len(), 1);
        // meet with empty is empty
        assert!(a.meet(&PropertySet::empty()).is_empty());
    }

    #[test]
    fn join_unions() {
        let a = PropertySet::single(MonotonicInc);
        let b = PropertySet::single(Injective);
        let j = a.join(&b);
        assert!(j.has(MonotonicInc));
        assert!(j.has(Injective));
        assert!(!j.has(StrictMonotonicInc));
    }

    #[test]
    fn meet_join_lattice_laws() {
        // idempotence, commutativity, absorption — checked over all single-
        // property sets.
        for p in ArrayProperty::all() {
            for q in ArrayProperty::all() {
                let a = PropertySet::single(*p);
                let b = PropertySet::single(*q);
                assert_eq!(a.meet(&a), a);
                assert_eq!(a.join(&a), a);
                assert_eq!(a.meet(&b), b.meet(&a));
                assert_eq!(a.join(&b), b.join(&a));
                assert_eq!(a.join(&a.meet(&b)), a);
                assert_eq!(a.meet(&a.join(&b)), a);
            }
        }
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", MonotonicInc), "Monotonic_inc");
        let s = PropertySet::single(StrictMonotonicInc);
        let txt = format!("{s}");
        assert!(txt.contains("Injective"));
        assert!(txt.contains("Strict_monotonic_inc"));
        assert_eq!(format!("{}", PropertySet::empty()), "{}");
    }
}
