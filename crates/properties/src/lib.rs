//! # ss-properties — index-array property algebra
//!
//! The properties of Section 2 of *Compile-time Parallelization of
//! Subscripted Subscript Patterns* — injectivity, (strict) monotonicity,
//! monotonic differences, injective subsets — together with:
//!
//! * [`property`] — the property lattice (implication closure, meet/join);
//! * [`database`] — the [`PropertyDatabase`] the aggregation pass fills and
//!   the extended Range Test consumes;
//! * [`concrete`] — run-time verifiers used as test oracles and as the
//!   inspector half of the inspector/executor baseline.
//!
//! ```
//! use ss_properties::{ArrayProperty, PropertySet};
//!
//! let strict = PropertySet::single(ArrayProperty::StrictMonotonicInc);
//! // strict monotonicity implies injectivity (Section 2, property 2b)
//! assert!(strict.has(ArrayProperty::Injective));
//! ```

pub mod concrete;
pub mod database;
pub mod property;

pub use database::{ArrayFact, FilterOp, GuardedFact, PairFact, PropertyDatabase, ValueFilter};
pub use property::{ArrayProperty, PropertySet};
