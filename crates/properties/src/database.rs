//! The property database: what the analysis knows about every array and
//! scalar at a given program point.
//!
//! This is the hand-off structure between the aggregation pass (Section 3,
//! which *derives* facts from the code filling the index arrays) and the
//! extended Range Test (Section 5, which *consumes* them to prove loops
//! parallel).

use crate::property::{ArrayProperty, PropertySet};
use serde::{Deserialize, Serialize};
use ss_symbolic::{Expr, SymRange};
use std::collections::HashMap;
use std::fmt;

/// A comparison selecting a subset of an array's elements by value,
/// e.g. "the elements with value `>= 0`" (Figure 5).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValueFilter {
    /// Comparison operator (only ordering comparisons are meaningful here).
    pub op: FilterOp,
    /// The bound the element values are compared against.
    pub bound: Expr,
}

/// Operators usable in a [`ValueFilter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterOp {
    /// value `>=` bound
    Ge,
    /// value `>` bound
    Gt,
    /// value `<=` bound
    Le,
    /// value `<` bound
    Lt,
}

impl ValueFilter {
    /// "value >= 0", the filter of Figure 5.
    pub fn non_negative() -> ValueFilter {
        ValueFilter {
            op: FilterOp::Ge,
            bound: Expr::Int(0),
        }
    }

    /// Evaluates the filter on a concrete value (only constant bounds).
    pub fn accepts(&self, value: i64) -> Option<bool> {
        let b = self.bound.as_int()?;
        Some(match self.op {
            FilterOp::Ge => value >= b,
            FilterOp::Gt => value > b,
            FilterOp::Le => value <= b,
            FilterOp::Lt => value < b,
        })
    }
}

impl fmt::Display for ValueFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.op {
            FilterOp::Ge => ">=",
            FilterOp::Gt => ">",
            FilterOp::Le => "<=",
            FilterOp::Lt => "<",
        };
        write!(f, "value {op} {}", self.bound)
    }
}

/// Properties that hold only for a value-filtered subset of the elements.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuardedFact {
    /// Which elements the fact applies to.
    pub filter: ValueFilter,
    /// The properties of that subset.
    pub properties: PropertySet,
}

/// Everything known about one array at the program point of interest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayFact {
    /// Array name.
    pub array: String,
    /// The subscript (index) range for which the fact holds — a **must**
    /// range per Section 3.2.
    pub index_range: SymRange,
    /// Value range of the elements in that index range, if known.
    pub value_range: Option<SymRange>,
    /// Whole-section properties.
    pub properties: PropertySet,
    /// Properties of value-filtered subsets (Figure 5 style).
    pub guarded: Vec<GuardedFact>,
    /// Human-readable provenance ("recurrence aggregation at loop L1", …).
    pub origin: String,
}

impl ArrayFact {
    /// Creates a fact with no information beyond the section it covers.
    pub fn new(array: impl Into<String>, index_range: SymRange) -> ArrayFact {
        ArrayFact {
            array: array.into(),
            index_range,
            value_range: None,
            properties: PropertySet::empty(),
            guarded: Vec::new(),
            origin: String::new(),
        }
    }

    /// Builder-style: sets the value range.
    pub fn with_value_range(mut self, r: SymRange) -> Self {
        self.value_range = Some(r);
        self
    }

    /// Builder-style: adds a property (closure under implication applies).
    pub fn with_property(mut self, p: ArrayProperty) -> Self {
        self.properties.insert(p);
        self
    }

    /// Builder-style: adds a guarded (subset) fact.
    pub fn with_guarded(mut self, filter: ValueFilter, props: PropertySet) -> Self {
        self.guarded.push(GuardedFact {
            filter,
            properties: props,
        });
        self
    }

    /// Builder-style: records where the fact came from.
    pub fn with_origin(mut self, origin: impl Into<String>) -> Self {
        self.origin = origin.into();
        self
    }

    /// True if property `p` holds for the whole covered section.
    pub fn has(&self, p: ArrayProperty) -> bool {
        self.properties.has(p)
    }

    /// True if property `p` holds for the subset selected by a filter at
    /// least as strict as `filter` (currently: exact filter match).
    pub fn has_on_subset(&self, filter: &ValueFilter, p: ArrayProperty) -> bool {
        self.guarded
            .iter()
            .any(|g| &g.filter == filter && g.properties.has(p))
    }
}

impl fmt::Display for ArrayFact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.array, self.index_range)?;
        if let Some(v) = &self.value_range {
            write!(f, ", {v}")?;
        }
        if !self.properties.is_empty() {
            write!(f, ", {}", self.properties)?;
        }
        for g in &self.guarded {
            write!(f, ", [{}] {}", g.filter, g.properties)?;
        }
        Ok(())
    }
}

/// A relational fact between two arrays: the paper's "monotonic difference"
/// (Figure 4), e.g. `rowstr[i+1] - nzloc[i]` is non-decreasing in `i`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairFact {
    /// The minuend array.
    pub minuend: String,
    /// The subtrahend array.
    pub subtrahend: String,
    /// Property of the difference sequence.
    pub property: ArrayProperty,
    /// Provenance.
    pub origin: String,
}

/// The complete set of facts available at a program point.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PropertyDatabase {
    facts: HashMap<String, ArrayFact>,
    pair_facts: Vec<PairFact>,
    scalar_ranges: HashMap<String, SymRange>,
}

impl PropertyDatabase {
    /// An empty database (what a conventional compiler knows about index
    /// arrays: nothing).
    pub fn new() -> PropertyDatabase {
        PropertyDatabase::default()
    }

    /// Records (or replaces) the fact for an array.
    pub fn insert(&mut self, fact: ArrayFact) {
        self.facts.insert(fact.array.clone(), fact);
    }

    /// Records a pair (difference) fact.
    pub fn insert_pair(&mut self, fact: PairFact) {
        self.pair_facts.push(fact);
    }

    /// Drops everything known about `array`: its section fact and every pair
    /// fact involving it.  Used when later code modifies the array in a way
    /// the analysis cannot summarize — keeping stale properties past such a
    /// write would be unsound.
    pub fn invalidate_array(&mut self, array: &str) {
        self.facts.remove(array);
        self.pair_facts
            .retain(|p| p.minuend != array && p.subtrahend != array);
    }

    /// Records the value range of an integer scalar.
    pub fn set_scalar_range(&mut self, name: impl Into<String>, range: SymRange) {
        self.scalar_ranges.insert(name.into(), range);
    }

    /// The fact recorded for `array`, if any.
    pub fn fact(&self, array: &str) -> Option<&ArrayFact> {
        self.facts.get(array)
    }

    /// Mutable access to the fact recorded for `array`.
    pub fn fact_mut(&mut self, array: &str) -> Option<&mut ArrayFact> {
        self.facts.get_mut(array)
    }

    /// True if `array` is known to have property `p` over its covered
    /// section.
    pub fn has_property(&self, array: &str, p: ArrayProperty) -> bool {
        self.facts.get(array).map(|f| f.has(p)).unwrap_or(false)
    }

    /// True if the filtered subset of `array` has property `p`.
    pub fn has_property_on_subset(
        &self,
        array: &str,
        filter: &ValueFilter,
        p: ArrayProperty,
    ) -> bool {
        self.facts
            .get(array)
            .map(|f| f.has_on_subset(filter, p) || f.has(p))
            .unwrap_or(false)
    }

    /// The value range of `array`'s elements, if known.
    pub fn value_range(&self, array: &str) -> Option<&SymRange> {
        self.facts.get(array).and_then(|f| f.value_range.as_ref())
    }

    /// The value range of a scalar, if known.
    pub fn scalar_range(&self, name: &str) -> Option<&SymRange> {
        self.scalar_ranges.get(name)
    }

    /// The recorded monotonic-difference fact for a pair of arrays.
    pub fn pair_fact(&self, minuend: &str, subtrahend: &str) -> Option<&PairFact> {
        self.pair_facts
            .iter()
            .find(|p| p.minuend == minuend && p.subtrahend == subtrahend)
    }

    /// All array facts in deterministic (name) order.
    pub fn facts(&self) -> Vec<&ArrayFact> {
        let mut v: Vec<&ArrayFact> = self.facts.values().collect();
        v.sort_by(|a, b| a.array.cmp(&b.array));
        v
    }

    /// All pair facts.
    pub fn pair_facts(&self) -> &[PairFact] {
        &self.pair_facts
    }

    /// All scalar ranges in deterministic (name) order.
    pub fn scalar_ranges(&self) -> Vec<(&String, &SymRange)> {
        let mut v: Vec<(&String, &SymRange)> = self.scalar_ranges.iter().collect();
        v.sort_by(|a, b| a.0.cmp(b.0));
        v
    }

    /// Number of array facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True if no facts are recorded.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty() && self.pair_facts.is_empty() && self.scalar_ranges.is_empty()
    }

    /// Merges facts derived along two control-flow paths: array facts present
    /// on both sides are met (property intersection, value-range hull), facts
    /// present on only one side are dropped (they are not guaranteed).
    pub fn merge_paths(&self, other: &PropertyDatabase) -> PropertyDatabase {
        let mut out = PropertyDatabase::new();
        for (name, a) in &self.facts {
            if let Some(b) = other.facts.get(name) {
                let value_range = match (&a.value_range, &b.value_range) {
                    (Some(x), Some(y)) => Some(x.union(y)),
                    _ => None,
                };
                let guarded = a
                    .guarded
                    .iter()
                    .filter(|ga| {
                        b.guarded
                            .iter()
                            .any(|gb| gb.filter == ga.filter && gb.properties == ga.properties)
                    })
                    .cloned()
                    .collect();
                out.insert(ArrayFact {
                    array: name.clone(),
                    index_range: a.index_range.union(&b.index_range),
                    value_range,
                    properties: a.properties.meet(&b.properties),
                    guarded,
                    origin: format!("merge({}, {})", a.origin, b.origin),
                });
            }
        }
        for p in &self.pair_facts {
            if other.pair_facts.iter().any(|q| q == p) {
                out.insert_pair(p.clone());
            }
        }
        for (name, r) in &self.scalar_ranges {
            if let Some(r2) = other.scalar_ranges.get(name) {
                out.set_scalar_range(name.clone(), r.union(r2));
            }
        }
        out
    }
}

impl fmt::Display for PropertyDatabase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for fact in self.facts() {
            writeln!(f, "{fact}")?;
        }
        for p in &self.pair_facts {
            writeln!(f, "{} - {}: {}", p.minuend, p.subtrahend, p.property)?;
        }
        for (name, r) in self.scalar_ranges() {
            writeln!(f, "{name}: {r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::property::ArrayProperty::*;

    fn rowptr_fact() -> ArrayFact {
        // rowptr: [1 : ROWLEN], Monotonic_inc  (the paper's Phase 2 result)
        ArrayFact::new("rowptr", SymRange::new(Expr::int(1), Expr::sym("ROWLEN")))
            .with_property(MonotonicInc)
            .with_origin("Phase 2 aggregation of loop L1")
    }

    #[test]
    fn fact_queries() {
        let f = rowptr_fact();
        assert!(f.has(MonotonicInc));
        assert!(!f.has(Injective));
        assert_eq!(format!("{f}"), "rowptr: [1 : ROWLEN], {Monotonic_inc}");
        let f = ArrayFact::new(
            "rowsize",
            SymRange::new(Expr::int(0), Expr::sub(Expr::sym("ROWLEN"), Expr::int(1))),
        )
        .with_value_range(SymRange::new(
            Expr::int(0),
            Expr::sub(Expr::sym("COLUMNLEN"), Expr::int(1)),
        ))
        .with_property(NonNegative);
        assert!(f.has(NonNegative));
        assert!(f.value_range.is_some());
    }

    #[test]
    fn database_queries() {
        let mut db = PropertyDatabase::new();
        assert!(db.is_empty());
        db.insert(rowptr_fact());
        db.insert(
            ArrayFact::new(
                "mt_to_id",
                SymRange::new(Expr::int(0), Expr::sub(Expr::sym("nelt"), Expr::int(1))),
            )
            .with_property(Injective),
        );
        db.set_scalar_range("count", SymRange::constant(0, 100));
        assert!(db.has_property("rowptr", MonotonicInc));
        assert!(!db.has_property("rowptr", Injective));
        assert!(db.has_property("mt_to_id", Injective));
        assert!(!db.has_property("unknown", Injective));
        assert_eq!(db.len(), 2);
        assert!(db.scalar_range("count").is_some());
        assert!(db.scalar_range("other").is_none());
        assert!(!db.is_empty());
        let txt = format!("{db}");
        assert!(txt.contains("rowptr"));
        assert!(txt.contains("count: [0 : 100]"));
    }

    #[test]
    fn guarded_subset_facts() {
        let filter = ValueFilter::non_negative();
        let mut db = PropertyDatabase::new();
        db.insert(
            ArrayFact::new(
                "jmatch",
                SymRange::new(Expr::int(0), Expr::sub(Expr::sym("m"), Expr::int(1))),
            )
            .with_guarded(filter.clone(), PropertySet::single(Injective)),
        );
        assert!(db.has_property_on_subset("jmatch", &filter, Injective));
        assert!(!db.has_property("jmatch", Injective));
        // whole-array property also satisfies subset queries
        let mut db2 = PropertyDatabase::new();
        db2.insert(ArrayFact::new("p", SymRange::constant(0, 9)).with_property(Injective));
        assert!(db2.has_property_on_subset("p", &filter, Injective));
        // filter evaluation
        assert_eq!(filter.accepts(3), Some(true));
        assert_eq!(filter.accepts(-1), Some(false));
        assert_eq!(format!("{filter}"), "value >= 0");
    }

    #[test]
    fn pair_facts_for_monotonic_difference() {
        let mut db = PropertyDatabase::new();
        db.insert_pair(PairFact {
            minuend: "rowstr".into(),
            subtrahend: "nzloc".into(),
            property: MonotonicInc,
            origin: "figure 4".into(),
        });
        assert!(db.pair_fact("rowstr", "nzloc").is_some());
        assert!(db.pair_fact("nzloc", "rowstr").is_none());
        assert_eq!(db.pair_facts().len(), 1);
    }

    #[test]
    fn merge_keeps_only_common_guarantees() {
        let mut a = PropertyDatabase::new();
        a.insert(
            ArrayFact::new("x", SymRange::constant(0, 9))
                .with_property(StrictMonotonicInc)
                .with_value_range(SymRange::constant(0, 5)),
        );
        a.insert(ArrayFact::new("only_in_a", SymRange::constant(0, 3)).with_property(Injective));
        a.set_scalar_range("s", SymRange::constant(0, 1));
        let mut b = PropertyDatabase::new();
        b.insert(
            ArrayFact::new("x", SymRange::constant(0, 9))
                .with_property(MonotonicInc)
                .with_value_range(SymRange::constant(3, 8)),
        );
        b.set_scalar_range("s", SymRange::constant(1, 2));
        let m = a.merge_paths(&b);
        assert!(m.has_property("x", MonotonicInc));
        assert!(!m.has_property("x", StrictMonotonicInc));
        assert!(!m.has_property("x", Injective));
        assert!(m.fact("only_in_a").is_none());
        assert_eq!(m.value_range("x").unwrap().as_const().unwrap(), (0, 8));
        assert_eq!(m.scalar_range("s").unwrap().as_const().unwrap(), (0, 2));
    }
}
