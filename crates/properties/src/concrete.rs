//! Concrete (run-time) property verifiers.
//!
//! The compile-time analysis *derives* properties; these functions *check*
//! them on actual array contents.  They serve three purposes:
//!
//! 1. test oracles — property tests generate index arrays, run the kernels,
//!    and assert that whenever the static analysis claims a property, the
//!    concrete contents satisfy it;
//! 2. the inspector half of a reference inspector/executor baseline (the
//!    run-time approach the paper contrasts against);
//! 3. sanity checks inside the benchmark harness before timing runs.

use crate::property::{ArrayProperty, PropertySet};
use std::collections::HashSet;

/// `a[i] != a[j]` for all `i != j`.
pub fn is_injective(a: &[i64]) -> bool {
    let mut seen = HashSet::with_capacity(a.len());
    a.iter().all(|&x| seen.insert(x))
}

/// `a[i] <= a[i+1]` for all `i` (non-strict increasing).
pub fn is_monotonic_inc(a: &[i64]) -> bool {
    a.windows(2).all(|w| w[0] <= w[1])
}

/// `a[i] >= a[i+1]` for all `i` (non-strict decreasing).
pub fn is_monotonic_dec(a: &[i64]) -> bool {
    a.windows(2).all(|w| w[0] >= w[1])
}

/// `a[i] < a[i+1]` for all `i`.
pub fn is_strict_monotonic_inc(a: &[i64]) -> bool {
    a.windows(2).all(|w| w[0] < w[1])
}

/// `a[i] > a[i+1]` for all `i`.
pub fn is_strict_monotonic_dec(a: &[i64]) -> bool {
    a.windows(2).all(|w| w[0] > w[1])
}

/// `a[i] == i` for all `i`.
pub fn is_identity(a: &[i64]) -> bool {
    a.iter().enumerate().all(|(i, &x)| x == i as i64)
}

/// Every element `>= 0`.
pub fn is_non_negative(a: &[i64]) -> bool {
    a.iter().all(|&x| x >= 0)
}

/// Checks a single property on concrete contents.
pub fn check_property(a: &[i64], p: ArrayProperty) -> bool {
    match p {
        ArrayProperty::MonotonicInc => is_monotonic_inc(a),
        ArrayProperty::MonotonicDec => is_monotonic_dec(a),
        ArrayProperty::StrictMonotonicInc => is_strict_monotonic_inc(a),
        ArrayProperty::StrictMonotonicDec => is_strict_monotonic_dec(a),
        ArrayProperty::Injective => is_injective(a),
        ArrayProperty::Identity => is_identity(a),
        ArrayProperty::NonNegative => is_non_negative(a),
    }
}

/// Checks every property in a set on concrete contents.
pub fn check_all(a: &[i64], props: &PropertySet) -> bool {
    props.iter().all(|p| check_property(a, p))
}

/// Infers the complete set of properties that hold for the concrete contents
/// (the "perfect inspector"): the best any analysis could establish.
pub fn infer_properties(a: &[i64]) -> PropertySet {
    PropertySet::from_iter(
        ArrayProperty::all()
            .iter()
            .copied()
            .filter(|p| check_property(a, *p)),
    )
}

/// The subset property of Section 2.3: the elements of `a` selected by
/// `keep` form an injective set. (Figure 5: the non-negative elements of
/// `jmatch` are injective.)
pub fn is_injective_subset(a: &[i64], keep: impl Fn(i64) -> bool) -> bool {
    let mut seen = HashSet::new();
    a.iter().filter(|&&x| keep(x)).all(|&x| seen.insert(x))
}

/// The monotonic-difference property of Section 2.2(c): `a[i] - b[i-1]` and
/// `a[i+1] - b[i]` form ranges `[j1 : j2)` that never overlap across `i`,
/// which holds iff the per-`i` ranges are non-decreasing, i.e.
/// `a[i] - b[i-1] >= a[i] - b[i]`… in the paper's CG example the check
/// reduces to: the sequence `j2(i)` is monotonic and `j1(i+1) >= j2(i)`.
/// Here we verify the operational meaning directly: consecutive `[j1, j2)`
/// windows do not overlap.
pub fn is_monotonic_difference(rowstr: &[i64], nzloc: &[i64]) -> bool {
    // j1(i) = if i == 0 { 0 } else { rowstr[i] - nzloc[i-1] }
    // j2(i) = rowstr[i+1] - nzloc[i]
    let nrows = nzloc.len().min(rowstr.len().saturating_sub(1));
    let mut prev_end: i64 = i64::MIN;
    for i in 0..nrows {
        let j1 = if i == 0 { 0 } else { rowstr[i] - nzloc[i - 1] };
        let j2 = rowstr[i + 1] - nzloc[i];
        if j1 > j2 {
            return false; // malformed window
        }
        if j1 < prev_end {
            return false; // overlaps previous window
        }
        prev_end = j2;
    }
    true
}

/// Returns `true` if writing through `index[i]` for every `i` touches each
/// location at most once — the exact "no output dependence" condition the
/// compile-time analysis must prove for Figure 2-style loops.  A `None`
/// guard accepts every element; `Some(pred)` models guarded writes
/// (Figure 5).
pub fn writes_are_conflict_free(index: &[i64], guard: Option<&dyn Fn(i64) -> bool>) -> bool {
    let mut seen = HashSet::new();
    for &x in index {
        if let Some(g) = guard {
            if !g(x) {
                continue;
            }
        }
        if !seen.insert(x) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ArrayProperty::*;

    #[test]
    fn basic_verifiers() {
        assert!(is_injective(&[3, 1, 4, 5, 9, 2, 6]));
        assert!(!is_injective(&[3, 1, 4, 1]));
        assert!(is_monotonic_inc(&[0, 0, 1, 3, 3, 7]));
        assert!(!is_monotonic_inc(&[0, 2, 1]));
        assert!(is_monotonic_dec(&[5, 5, 3, 0]));
        assert!(is_strict_monotonic_inc(&[0, 1, 3, 7]));
        assert!(!is_strict_monotonic_inc(&[0, 1, 1]));
        assert!(is_strict_monotonic_dec(&[9, 4, 1]));
        assert!(is_identity(&[0, 1, 2, 3]));
        assert!(!is_identity(&[0, 2, 1]));
        assert!(is_non_negative(&[0, 5, 2]));
        assert!(!is_non_negative(&[0, -1]));
        // degenerate cases: empty and singleton arrays satisfy everything
        // except identity-with-offset concerns
        for p in ArrayProperty::all() {
            assert!(check_property(&[], *p), "{p} should hold for empty");
        }
        assert!(check_property(&[0], Identity));
        assert!(check_property(&[7], Injective));
    }

    #[test]
    fn inferred_properties_respect_implications() {
        let strict = infer_properties(&[0, 3, 5, 9]);
        assert!(strict.has(StrictMonotonicInc));
        assert!(strict.has(MonotonicInc));
        assert!(strict.has(Injective));
        assert!(strict.has(NonNegative));
        assert!(!strict.has(Identity));
        let ident = infer_properties(&[0, 1, 2, 3]);
        assert!(ident.has(Identity));
        // every inferred set is closed under implication by construction
        for p in ident.iter() {
            for q in ArrayProperty::all() {
                if p.implies(*q) {
                    assert!(ident.has(*q));
                }
            }
        }
        let nothing = infer_properties(&[2, -1, 2]);
        assert!(nothing.is_empty());
    }

    #[test]
    fn injective_subset_matches_figure5() {
        // jmatch: -1 entries are unmatched rows; the non-negative entries
        // must be unique column indices.
        let jmatch = [-1, 3, -1, 0, 2, -1, 1];
        assert!(is_injective_subset(&jmatch, |x| x >= 0));
        assert!(!is_injective(&jmatch)); // the -1s repeat
        let bad = [-1, 3, 3, 0];
        assert!(!is_injective_subset(&bad, |x| x >= 0));
        // writes through the guarded subscript are conflict free
        let guard = |x: i64| x >= 0;
        assert!(writes_are_conflict_free(&jmatch, Some(&guard)));
        assert!(!writes_are_conflict_free(&bad, Some(&guard)));
        assert!(!writes_are_conflict_free(&jmatch, None));
    }

    #[test]
    fn monotonic_difference_matches_figure4() {
        // rowstr is a CSR row-pointer array; nzloc counts entries eliminated
        // before each row. The target windows [j1, j2) must tile without
        // overlap.
        let rowstr = [0, 4, 7, 12, 15];
        let nzloc = [1, 2, 4, 5];
        // j1/j2 windows: i=0: [0, 3) ; i=1: [3, 5) ; i=2: [5, 8) ; i=3: [8, 10)
        assert!(is_monotonic_difference(&rowstr, &nzloc));
        // a decreasing difference sequence rowstr[i+1] - nzloc[i] breaks the
        // property (the window of row 1 would start after it ends)
        let nzloc_bad = [0, 5, 6, 7];
        assert!(!is_monotonic_difference(&rowstr, &nzloc_bad));
    }

    #[test]
    fn check_all_uses_every_property() {
        let props = PropertySet::from_iter([MonotonicInc, NonNegative]);
        assert!(check_all(&[0, 1, 1, 4], &props));
        assert!(!check_all(&[0, 1, 0], &props));
        assert!(!check_all(&[-1, 0, 1], &props));
        assert!(check_all(&[5, -2], &PropertySet::empty()));
    }
}
