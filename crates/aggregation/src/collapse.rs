//! Whole-program driver: inside-out loop collapsing in program order
//! (Section 3.1), producing the property database consumed by the
//! dependence test.
//!
//! The driver walks the top-level statements in program order, maintaining a
//! symbolic environment.  When it reaches a loop nest it collapses the nest
//! inside out — Phase 1 then Phase 2 per loop, innermost first — registering
//! every collapsed loop in a summary table.  Nested loops encountered during
//! an outer loop's Phase 1 are replaced by their summaries (instantiated at
//! the values live at that point), exactly as the paper prescribes.

use crate::phase1::{phase1, Phase1Result};
use crate::phase2::{instantiate_at_entry, phase2, CollapsedLoop};
use ss_ir::ast::{LoopId, Program, Stmt};
use ss_ir::loops::LoopTree;
use ss_properties::{ArrayFact, PropertyDatabase};
use ss_rangeprop::{analyze_block, Env, LoopHandler, WriteRecord};
use ss_symbolic::{Expr, SymRange};
use std::collections::HashMap;

/// The complete result of analyzing a program.
#[derive(Debug, Clone)]
pub struct ProgramAnalysis {
    /// Facts available at the end of the program.
    pub db: PropertyDatabase,
    /// Facts available at the entry of each loop (what the dependence test
    /// for that loop may use).
    pub db_at_loop: HashMap<LoopId, PropertyDatabase>,
    /// Every collapsed loop.
    pub collapsed: HashMap<LoopId, CollapsedLoop>,
    /// Phase 1 summaries (kept for reporting / debugging — these are the
    /// values the paper's Section 3.5 trace lists).
    pub phase1: HashMap<LoopId, Phase1Result>,
    /// The symbolic environment after the last statement.
    pub final_env: Env,
    /// The loop tree of the analyzed program.
    pub tree: LoopTree,
}

impl ProgramAnalysis {
    /// The property database to use when testing the given loop.
    pub fn db_for_loop(&self, id: LoopId) -> &PropertyDatabase {
        self.db_at_loop.get(&id).unwrap_or(&self.db)
    }

    /// The collapsed summary of a loop, if it was analyzable.
    pub fn collapsed_loop(&self, id: LoopId) -> Option<&CollapsedLoop> {
        self.collapsed.get(&id)
    }
}

/// Applies collapsed-loop summaries when an outer loop's Phase 1 encounters a
/// nested loop.
struct SummaryHandler<'a> {
    collapsed: &'a HashMap<LoopId, CollapsedLoop>,
}

impl LoopHandler for SummaryHandler<'_> {
    fn apply(&self, id: LoopId, env: &mut Env, writes: &mut Vec<WriteRecord>) -> bool {
        let Some(summary) = self.collapsed.get(&id) else {
            return false;
        };
        apply_summary(summary, env, writes);
        true
    }
}

/// Applies a collapsed loop's effect to an environment, recording its array
/// writes.
pub fn apply_summary(summary: &CollapsedLoop, env: &mut Env, writes: &mut Vec<WriteRecord>) {
    // The snapshot used to instantiate Λ placeholders: the environment at
    // the loop's entry, i.e. before any of its effects are applied.
    let entry_snapshot = env.clone();
    for (name, range) in &summary.scalar_exit {
        let inst = instantiate_at_entry(range, &entry_snapshot);
        env.set_scalar(name.clone(), inst);
    }
    for name in &summary.clobbered_scalars {
        env.set_scalar(name.clone(), SymRange::unknown());
    }
    if !summary.index_var.is_empty() {
        // The index variable's value after the loop is not tracked.
        env.set_scalar(summary.index_var.clone(), SymRange::unknown());
    }
    for fact in &summary.array_facts {
        let index_range = instantiate_at_entry(&fact.index_range, &entry_snapshot);
        let value_range = fact
            .value_range
            .as_ref()
            .map(|r| instantiate_at_entry(r, &entry_snapshot));
        if let Some(vr) = &value_range {
            env.set_array_value(fact.array.clone(), vr.clone());
        } else {
            env.clear_array_value(&fact.array);
        }
        writes.push(WriteRecord {
            array: fact.array.clone(),
            subscript: Expr::Bottom,
            subscript_range: index_range,
            value: value_range.unwrap_or_else(SymRange::unknown),
            value_exact: Expr::Bottom,
            guards: Vec::new(),
            under_unknown_guard: true,
        });
    }
    for array in &summary.clobbered_arrays {
        env.clear_array_value(array);
        writes.push(WriteRecord {
            array: array.clone(),
            subscript: Expr::Bottom,
            subscript_range: SymRange::unknown(),
            value: SymRange::unknown(),
            value_exact: Expr::Bottom,
            guards: Vec::new(),
            under_unknown_guard: true,
        });
    }
}

/// Analyzes a whole program: collapses every loop nest in program order and
/// builds the property database.
pub fn analyze_program(program: &Program) -> ProgramAnalysis {
    let tree = LoopTree::build(program);
    let mut analysis = ProgramAnalysis {
        db: PropertyDatabase::new(),
        db_at_loop: HashMap::new(),
        collapsed: HashMap::new(),
        phase1: HashMap::new(),
        final_env: Env::new(),
        tree,
    };
    let mut env = Env::new();
    process_stmts(&program.body, &mut env, &mut analysis);
    // Record final scalar ranges in the database for reporting.
    for name in env.scalar_names() {
        let r = env.scalar(name);
        if !r.is_unknown() {
            analysis.db.set_scalar_range(name.clone(), r);
        }
    }
    analysis.final_env = env;
    analysis
}

fn process_stmts(stmts: &[Stmt], env: &mut Env, analysis: &mut ProgramAnalysis) {
    for s in stmts {
        // Snapshot the database for every loop contained in this statement:
        // those are the facts available when that loop is dependence-tested.
        let mut contained = Vec::new();
        collect_loop_ids(s, &mut contained);
        for id in &contained {
            analysis.db_at_loop.insert(*id, analysis.db.clone());
        }
        // Collapse every loop inside the statement, innermost first.
        collapse_loops_in_stmt(s, env, analysis);
        // Interpret the statement itself (loops are applied via their
        // summaries).
        let handler = SummaryHandler {
            collapsed: &analysis.collapsed,
        };
        let result = analyze_block(std::slice::from_ref(s), env.clone(), &handler);
        *env = result.env;
        // Soundness: forget facts about arrays this statement modified in
        // ways the analysis could not summarize, *before* publishing any
        // facts the statement newly established.
        invalidate_overwritten(s, &contained, analysis);
        // Publish the facts of top-level loops into the running database.
        if let Some(id) = s.loop_id() {
            if let Some(summary) = analysis.collapsed.get(&id) {
                publish_facts(summary, env, &mut analysis.db);
            }
        }
    }
}

/// Removes database facts invalidated by this statement: arrays that any
/// collapsed loop inside it clobbered, and arrays written directly by
/// non-loop statements (a single-element update after a property-creating
/// loop may break the property; the conservative response is to forget it).
fn invalidate_overwritten(s: &Stmt, contained: &[LoopId], analysis: &mut ProgramAnalysis) {
    let mut touched: Vec<String> = Vec::new();
    for id in contained {
        if let Some(summary) = analysis.collapsed.get(id) {
            touched.extend(summary.clobbered_arrays.iter().cloned());
        }
    }
    collect_plain_array_writes(s, &mut touched);
    for array in touched {
        analysis.db.invalidate_array(&array);
    }
}

/// Array names written by assignments that are not inside any loop of this
/// statement (writes inside loops are accounted for by the loop summaries).
fn collect_plain_array_writes(s: &Stmt, out: &mut Vec<String>) {
    match s {
        Stmt::Assign { target, .. } if !target.is_scalar() => out.push(target.name.clone()),
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            for child in then_branch.iter().chain(else_branch.iter()) {
                collect_plain_array_writes(child, out);
            }
        }
        _ => {}
    }
}

fn collect_loop_ids(s: &Stmt, out: &mut Vec<LoopId>) {
    if let Some(id) = s.loop_id() {
        out.push(id);
    }
    for block in s.child_blocks() {
        for child in block {
            collect_loop_ids(child, out);
        }
    }
}

fn collapse_loops_in_stmt(s: &Stmt, env: &Env, analysis: &mut ProgramAnalysis) {
    match s {
        Stmt::For { id, body, .. } | Stmt::While { id, body, .. } => {
            // Inner loops first (inside-out).
            for child in body {
                collapse_loops_in_stmt(child, env, analysis);
            }
            let info = analysis
                .tree
                .get(*id)
                .expect("loop id must be in the tree")
                .clone();
            let handler = SummaryHandler {
                collapsed: &analysis.collapsed,
            };
            let p1 = phase1(&info, body, env, &handler);
            let summary = phase2(&p1, env);
            analysis.phase1.insert(*id, p1);
            analysis.collapsed.insert(*id, summary);
        }
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            for child in then_branch.iter().chain(else_branch.iter()) {
                collapse_loops_in_stmt(child, env, analysis);
            }
        }
        Stmt::Decl { .. } | Stmt::Assign { .. } => {}
    }
}

fn publish_facts(summary: &CollapsedLoop, env: &Env, db: &mut PropertyDatabase) {
    for fact in &summary.array_facts {
        let instantiated = ArrayFact {
            array: fact.array.clone(),
            index_range: instantiate_at_entry(&fact.index_range, env),
            value_range: fact
                .value_range
                .as_ref()
                .map(|r| instantiate_at_entry(r, env)),
            properties: fact.properties.clone(),
            guarded: fact.guarded.clone(),
            origin: fact.origin.clone(),
        };
        db.insert(instantiated);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_ir::parser::parse_program;
    use ss_properties::ArrayProperty;
    use ss_symbolic::simplify;

    /// The full Figure 9 program (lines 1–15: the CSR filling code).
    const FIGURE9_FILL: &str = r#"
        index = 0;
        ind = 0;
        for (i = 0; i < ROWLEN; i++) {
            count = 0;
            for (j = 0; j < COLUMNLEN; j++) {
                if (a[i][j] != 0) {
                    count++;
                    column_number[index] = j;
                    index++;
                    value[ind] = a[i][j];
                    ind++;
                }
            }
            rowsize[i] = count;
        }
        rowptr[0] = 0;
        for (i = 1; i < ROWLEN + 1; i++) {
            rowptr[i] = rowptr[i-1] + rowsize[i-1];
        }
    "#;

    #[test]
    fn figure9_full_pipeline_derives_rowptr_monotonicity() {
        let p = parse_program("fig9_fill", FIGURE9_FILL).unwrap();
        let analysis = analyze_program(&p);
        // The paper's key result: rowptr: [1 : ROWLEN], Monotonic_inc.
        assert!(analysis
            .db
            .has_property("rowptr", ArrayProperty::MonotonicInc));
        let fact = analysis.db.fact("rowptr").unwrap();
        assert_eq!(fact.index_range.lo, Expr::Int(1));
        assert_eq!(fact.index_range.hi, Expr::sym("ROWLEN"));
        // And the supporting fact: rowsize: [0 : ROWLEN-1], values
        // [0 : COLUMNLEN], non-negative.  (The paper's Section 3.5 trace
        // quotes COLUMNLEN-1 for this bound; with n = COLUMNLEN iterations of
        // a `λ+1` recurrence the sound aggregate is Λ + COLUMNLEN, which is
        // what we produce — a slightly wider but still correct envelope.)
        let rowsize = analysis.db.fact("rowsize").unwrap();
        assert!(rowsize.has(ArrayProperty::NonNegative));
        let vr = rowsize.value_range.as_ref().unwrap();
        assert_eq!(vr.lo, Expr::Int(0));
        assert_eq!(vr.hi, Expr::sym("COLUMNLEN"));
        assert_eq!(
            rowsize.index_range.hi,
            simplify(&Expr::sub(Expr::sym("ROWLEN"), Expr::int(1)))
        );
    }

    #[test]
    fn figure9_phase_trace_matches_paper_section_3_5() {
        let p = parse_program("fig9_fill", FIGURE9_FILL).unwrap();
        let analysis = analyze_program(&p);
        // Phase 1 (inner j-loop, id 1): count: [λ : λ+1]
        let p1_inner = &analysis.phase1[&LoopId(1)];
        let count = p1_inner.scalar("count").unwrap();
        assert_eq!(count.lo, Expr::lambda("count"));
        assert_eq!(
            count.hi,
            simplify(&Expr::add(Expr::lambda("count"), Expr::int(1)))
        );
        // Phase 2 (inner): count: [Λ : Λ + COLUMNLEN]
        let c_inner = &analysis.collapsed[&LoopId(1)];
        let count_exit = &c_inner.scalar_exit["count"];
        assert_eq!(count_exit.lo, Expr::big_lambda("count"));
        assert_eq!(
            count_exit.hi,
            simplify(&Expr::add(
                Expr::big_lambda("count"),
                Expr::sym("COLUMNLEN")
            ))
        );
        // Phase 1 (outer i-loop, id 0): rowsize: [i], [0 : COLUMNLEN]
        // (see the note above about the paper's COLUMNLEN-1).
        let p1_outer = &analysis.phase1[&LoopId(0)];
        let w = p1_outer.writes_to("rowsize")[0];
        assert_eq!(w.subscript, Expr::sym("i"));
        assert_eq!(w.value.lo, Expr::Int(0));
        assert_eq!(w.value.hi, Expr::sym("COLUMNLEN"));
        // Phase 2 (outer): rowsize: [0 : ROWLEN-1], [0 : COLUMNLEN-1]
        let c_outer = &analysis.collapsed[&LoopId(0)];
        let rowsize = c_outer.fact("rowsize").unwrap();
        assert_eq!(rowsize.index_range.lo, Expr::Int(0));
        // Phase 1 (rowptr loop, id 2): rowptr: [i], rowptr[i-1] + [0 : COLUMNLEN-1]
        let p1_rowptr = &analysis.phase1[&LoopId(2)];
        let w = p1_rowptr.writes_to("rowptr")[0];
        assert_eq!(
            w.value.lo,
            Expr::array_ref("rowptr", Expr::add(Expr::Int(-1), Expr::sym("i")))
        );
        // Phase 2 (rowptr loop): rowptr: [1 : ROWLEN], Monotonic_inc
        let c_rowptr = &analysis.collapsed[&LoopId(2)];
        assert!(c_rowptr
            .fact("rowptr")
            .unwrap()
            .has(ArrayProperty::MonotonicInc));
    }

    #[test]
    fn db_snapshots_reflect_program_order() {
        let p = parse_program(
            "t",
            r#"
            for (k = 0; k < n; k++) { perm[k] = k; }
            for (i = 0; i < n; i++) { out[perm[i]] = i; }
        "#,
        )
        .unwrap();
        let analysis = analyze_program(&p);
        // When testing the second loop, perm's injectivity is already known.
        let db1 = analysis.db_for_loop(LoopId(1));
        assert!(db1.has_property("perm", ArrayProperty::Injective));
        // When testing the first loop, nothing is known yet.
        let db0 = analysis.db_for_loop(LoopId(0));
        assert!(!db0.has_property("perm", ArrayProperty::Injective));
    }

    #[test]
    fn index_gathering_fill_produces_injectivity_for_csr_style_arrays() {
        // Figure 6 substrate: blocksize is a count (non-negative by
        // construction), r is its prefix sum (a CSR-style row pointer), p is
        // an index-gathering permutation.
        let p = parse_program(
            "fig6_fill",
            r#"
            for (b = 0; b < nb; b++) {
                bs = 0;
                for (t = 0; t < bmax; t++) {
                    if (members[b][t] > 0) {
                        bs++;
                    }
                }
                blocksize[b] = bs;
            }
            r[0] = 0;
            for (b = 1; b <= nb; b++) {
                r[b] = r[b-1] + blocksize[b-1];
            }
            for (k = 0; k < nzb; k++) {
                p[k] = k;
            }
        "#,
        )
        .unwrap();
        let analysis = analyze_program(&p);
        assert!(analysis
            .db
            .has_property("blocksize", ArrayProperty::NonNegative));
        assert!(analysis.db.has_property("r", ArrayProperty::MonotonicInc));
        assert!(analysis.db.has_property("p", ArrayProperty::Injective));
        assert!(analysis.db.has_property("p", ArrayProperty::Identity));
    }

    #[test]
    fn scalars_surviving_loops_have_ranges_in_the_database() {
        let p = parse_program(
            "t",
            r#"
            total = 0;
            for (i = 0; i < n; i++) {
                total++;
            }
        "#,
        )
        .unwrap();
        let analysis = analyze_program(&p);
        let r = analysis.db.scalar_range("total").unwrap();
        // total = 0 + n * 1 = n after the loop (both bounds).
        assert_eq!(r.lo, Expr::sym("n"));
        assert_eq!(r.hi, Expr::sym("n"));
    }

    #[test]
    fn later_unanalyzable_writes_invalidate_earlier_facts() {
        // perm's injectivity (from the identity fill) must not survive the
        // scatter update `perm[swap[t]] = other[t]`, nor a plain
        // single-element write of unknown value.
        let p = parse_program(
            "t",
            r#"
            for (k = 0; k < n; k++) { perm[k] = k; }
            for (t = 0; t < nswaps; t++) { perm[swap[t]] = other[t]; }
        "#,
        )
        .unwrap();
        let analysis = analyze_program(&p);
        assert!(analysis
            .db_for_loop(LoopId(1))
            .has_property("perm", ArrayProperty::Injective));
        assert!(!analysis.db.has_property("perm", ArrayProperty::Injective));

        let p = parse_program(
            "t",
            r#"
            for (k = 0; k < n; k++) { perm[k] = k; }
            perm[3] = unknown_value;
            for (i = 0; i < n; i++) { out[perm[i]] = i; }
        "#,
        )
        .unwrap();
        let analysis = analyze_program(&p);
        assert!(
            !analysis
                .db_for_loop(LoopId(1))
                .has_property("perm", ArrayProperty::Injective),
            "single-element overwrite must invalidate the injectivity fact"
        );
    }

    #[test]
    fn unanalyzable_nests_are_reported_as_clobbered_not_wrong() {
        let p = parse_program(
            "t",
            r#"
            for (i = 0; i < n; i++) {
                x[idx[i]] = i;
            }
        "#,
        )
        .unwrap();
        let analysis = analyze_program(&p);
        let c = analysis.collapsed_loop(LoopId(0)).unwrap();
        assert!(c.clobbered_arrays.contains(&"x".to_string()));
        assert!(analysis.db.fact("x").is_none());
    }
}
