//! Phase 1: the effect of a single loop iteration (Section 3.3).
//!
//! Phase 1 abstractly interprets one iteration of a loop body.  Scalars the
//! body assigns are initialized to `λ(name)` — their (unknown) value at the
//! beginning of the iteration — so that the resulting value expressions
//! expose recurrences such as `count: [λ : λ+1]`.  Array writes are recorded
//! with their symbolic subscripts and value ranges.  Nested loops must
//! already be collapsed; their summaries are applied through the
//! [`ss_rangeprop::LoopHandler`] hook.

use ss_ir::ast::Stmt;
use ss_ir::loops::LoopInfo;
use ss_rangeprop::{analyze_block, Env, LoopHandler, WriteRecord};
use ss_symbolic::{Expr, SymRange};
use std::collections::HashMap;

/// The per-iteration effect of a loop.
#[derive(Debug, Clone)]
pub struct Phase1Result {
    /// The loop this result describes.
    pub info: LoopInfo,
    /// Value ranges of the scalars assigned in the body, at the end of one
    /// iteration, over `λ(..)`, the loop index and loop-invariant symbols.
    pub scalars: HashMap<String, SymRange>,
    /// Array writes performed by one iteration, in program order.
    pub writes: Vec<WriteRecord>,
    /// The environment at the end of the iteration (used by Phase 2 for
    /// relational queries).
    pub exit_env: Env,
}

impl Phase1Result {
    /// The per-iteration value range of a scalar (λ-relative), if the body
    /// assigns it.
    pub fn scalar(&self, name: &str) -> Option<&SymRange> {
        self.scalars.get(name)
    }

    /// The writes that target a given array.
    pub fn writes_to(&self, array: &str) -> Vec<&WriteRecord> {
        self.writes.iter().filter(|w| w.array == array).collect()
    }
}

/// Collects the names of scalars assigned anywhere in a statement list
/// (including nested loops and branches), excluding array writes.
pub fn assigned_scalars(stmts: &[Stmt]) -> Vec<String> {
    let mut out = Vec::new();
    fn walk(stmts: &[Stmt], out: &mut Vec<String>) {
        for s in stmts {
            match s {
                Stmt::Assign { target, .. }
                    if target.is_scalar() && !out.contains(&target.name) =>
                {
                    out.push(target.name.clone());
                }
                Stmt::Decl { name, dims, .. } if dims.is_empty() && !out.contains(name) => {
                    out.push(name.clone());
                }
                Stmt::For { var, body, .. } => {
                    if !out.contains(var) {
                        out.push(var.clone());
                    }
                    walk(body, out);
                }
                Stmt::While { body, .. } => walk(body, out),
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    walk(then_branch, out);
                    walk(else_branch, out);
                }
                _ => {}
            }
        }
    }
    walk(stmts, &mut out);
    out
}

/// Runs Phase 1 on a loop.
///
/// * `info` — the normalized loop description;
/// * `body` — the loop body statements;
/// * `entry_env` — the environment at loop entry (facts established by the
///   code before the loop, e.g. known element-value ranges of arrays);
/// * `handler` — supplies collapsed summaries for nested loops.
pub fn phase1(
    info: &LoopInfo,
    body: &[Stmt],
    entry_env: &Env,
    handler: &dyn LoopHandler,
) -> Phase1Result {
    let mut env = entry_env.clone();
    // Scalars assigned in the body start the iteration at λ(name).
    let written = assigned_scalars(body);
    for name in &written {
        if name == &info.var {
            continue;
        }
        env.set_scalar(name.clone(), SymRange::exact(Expr::lambda(name)));
    }
    // The loop index reads as itself and carries its iteration-range
    // assumption, so that relational queries ("is i >= 1?") can be answered.
    if !info.var.is_empty() {
        env.set_scalar(info.var.clone(), SymRange::exact(Expr::sym(&info.var)));
        if info.first != Expr::Bottom && info.last != Expr::Bottom {
            env.assumptions
                .assume_range(info.var.clone(), info.index_range());
        }
    }
    let out = analyze_block(body, env, handler);
    let mut scalars = HashMap::new();
    for name in &written {
        if name == &info.var {
            continue;
        }
        scalars.insert(name.clone(), out.env.scalar(name));
    }
    Phase1Result {
        info: info.clone(),
        scalars,
        writes: out.writes,
        exit_env: out.env,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_ir::loops::LoopTree;
    use ss_ir::parser::parse_program;
    use ss_rangeprop::NoSummaries;
    use ss_symbolic::simplify;

    fn setup(src: &str) -> (ss_ir::Program, LoopTree) {
        let p = parse_program("t", src).unwrap();
        let t = LoopTree::build(&p);
        (p, t)
    }

    #[test]
    fn paper_phase1_of_loop3() {
        // The j-loop of Figure 9 (lines 3–8): count: [λ : λ+1],
        // column_number/value: ⊥.
        let (p, t) = setup(
            r#"
            for (j = 0; j < COLUMNLEN; j++) {
                if (a[i][j] != 0) {
                    count++;
                    column_number[index] = j;
                    index++;
                    value[ind] = a[i][j];
                    ind++;
                }
            }
        "#,
        );
        let info = t.get(ss_ir::LoopId(0)).unwrap();
        let ss_ir::Stmt::For { body, .. } = &p.body[0] else {
            panic!()
        };
        let r = phase1(info, body, &Env::new(), &NoSummaries);
        let count = r.scalar("count").unwrap();
        assert_eq!(count.lo, Expr::lambda("count"));
        assert_eq!(
            count.hi,
            simplify(&Expr::add(Expr::lambda("count"), Expr::int(1)))
        );
        // column_number's write is under an unknown guard with a λ-valued
        // subscript: effectively ⊥ for the aggregation step.
        let col = r.writes_to("column_number")[0];
        assert!(col.under_unknown_guard);
        assert_eq!(col.subscript, Expr::lambda("index"));
        // index advanced by [0:1] as well
        let index = r.scalar("index").unwrap();
        assert_eq!(index.lo, Expr::lambda("index"));
    }

    #[test]
    fn paper_phase1_of_loop13() {
        // rowptr[i] = rowptr[i-1] + rowsize[i-1], with rowsize's value range
        // known at entry: Phase 1 yields
        //   rowptr: [i], rowptr[i-1] + [0 : COLUMNLEN-1]
        let (p, t) = setup(
            r#"
            for (i = 1; i < ROWLEN + 1; i++) {
                rowptr[i] = rowptr[i-1] + rowsize[i-1];
            }
        "#,
        );
        let info = t.get(ss_ir::LoopId(0)).unwrap();
        let ss_ir::Stmt::For { body, .. } = &p.body[0] else {
            panic!()
        };
        let mut entry = Env::new();
        entry.set_array_value(
            "rowsize",
            SymRange::new(
                Expr::int(0),
                Expr::sub(Expr::sym("COLUMNLEN"), Expr::int(1)),
            ),
        );
        let r = phase1(info, body, &entry, &NoSummaries);
        assert_eq!(r.writes.len(), 1);
        let w = &r.writes[0];
        assert_eq!(w.array, "rowptr");
        assert_eq!(w.subscript, Expr::sym("i"));
        assert_eq!(
            w.value.lo,
            Expr::array_ref("rowptr", Expr::add(Expr::Int(-1), Expr::sym("i")))
        );
        assert!(w.value.hi.contains_sym("COLUMNLEN"));
        assert!(w.is_unconditional());
    }

    #[test]
    fn loop_index_carries_range_assumption() {
        let (p, t) = setup("for (i = 1; i < n; i++) { x = i - 1; }");
        let info = t.get(ss_ir::LoopId(0)).unwrap();
        let ss_ir::Stmt::For { body, .. } = &p.body[0] else {
            panic!()
        };
        let r = phase1(info, body, &Env::new(), &NoSummaries);
        // i - 1 >= 0 is provable from the index range [1 : n-1]
        assert!(r
            .exit_env
            .assumptions
            .prove_nonneg(&Expr::sub(Expr::sym("i"), Expr::int(1)))
            .is_proven());
        assert_eq!(
            r.scalar("x").unwrap().as_exact(),
            Some(&simplify(&Expr::sub(Expr::sym("i"), Expr::int(1))))
        );
    }

    #[test]
    fn assigned_scalars_finds_nested_assignments() {
        let (p, _) = setup(
            r#"
            for (i = 0; i < n; i++) {
                count = 0;
                if (c[i] > 0) { count++; } else { other = 1; }
                for (j = 0; j < m; j++) { inner = j; }
            }
        "#,
        );
        let ss_ir::Stmt::For { body, .. } = &p.body[0] else {
            panic!()
        };
        let names = assigned_scalars(body);
        assert!(names.contains(&"count".to_string()));
        assert!(names.contains(&"other".to_string()));
        assert!(names.contains(&"inner".to_string()));
        assert!(names.contains(&"j".to_string()));
        assert!(!names.contains(&"i".to_string()));
    }
}
