//! Phase 2: aggregation of the per-iteration effect across the iteration
//! space (Section 3.4), and derivation of index-array properties.
//!
//! Given a [`Phase1Result`], Phase 2 produces the effect of the *entire*
//! loop:
//!
//! * scalar recurrences `λ + k` become `Λ + n·k` (and `λ + a + b·i` uses the
//!   closed-form index sum);
//! * array writes with simple subscripts `i + k` expand their subscript to
//!   the full iteration range;
//! * loop-invariant written values keep their value range for the whole
//!   section, and a provably non-negative range also records the
//!   `NonNegative` property;
//! * values affine in the loop index make the written section strictly
//!   monotonic (hence injective) — this is how "index gathering" fills such
//!   as `p[k] = base + k` are recognized;
//! * the array recurrence `a[i] = a[i-1] + nonneg` yields `Monotonic_inc`
//!   over the written range — the key derivation of the paper's Figure 9
//!   example;
//! * writes guarded by a representable condition contribute *guarded*
//!   (subset) facts instead of whole-section facts.

use crate::phase1::Phase1Result;
use ss_properties::{ArrayFact, ArrayProperty, PropertySet, ValueFilter};
use ss_rangeprop::{Env, WriteRecord};
use ss_symbolic::simplify::affine_in;
use ss_symbolic::subst::{subst_array_ref, subst_sym};
use ss_symbolic::sum::aggregate_scalar_range;
use ss_symbolic::{simplify, simplify_diff, Expr, SymRange};
use std::collections::HashMap;

/// The effect of an entire loop, produced by Phase 2.  This is what the
/// paper calls the *collapsed* loop.
#[derive(Debug, Clone)]
pub struct CollapsedLoop {
    /// The loop this summary describes.
    pub loop_id: ss_ir::LoopId,
    /// The loop's index variable (empty for `while` loops).
    pub index_var: String,
    /// Scalar values at loop exit, over `Λ(..)` and loop-invariant symbols.
    /// Scalars missing here were assigned but could not be aggregated.
    pub scalar_exit: HashMap<String, SymRange>,
    /// Scalars assigned by the loop whose exit value is unknown.
    pub clobbered_scalars: Vec<String>,
    /// Facts about array sections written by the loop.
    pub array_facts: Vec<ArrayFact>,
    /// Arrays written in ways the analysis could not summarize.
    pub clobbered_arrays: Vec<String>,
}

impl CollapsedLoop {
    /// The fact derived for `array`, if any.
    pub fn fact(&self, array: &str) -> Option<&ArrayFact> {
        self.array_facts.iter().find(|f| f.array == array)
    }
}

/// Runs Phase 2 for a loop whose Phase 1 summary is given.
///
/// `entry_env` is the environment at loop entry; it supplies the relational
/// assumptions (and known array value ranges) needed to prove, e.g., that a
/// recurrence increment is non-negative.
pub fn phase2(p1: &Phase1Result, entry_env: &Env) -> CollapsedLoop {
    let info = &p1.info;
    let mut out = CollapsedLoop {
        loop_id: info.id,
        index_var: info.var.clone(),
        scalar_exit: HashMap::new(),
        clobbered_scalars: Vec::new(),
        array_facts: Vec::new(),
        clobbered_arrays: Vec::new(),
    };
    // Loops we cannot normalize (while loops, decreasing/unknown-step for
    // loops) clobber everything they touch.
    if info.last == Expr::Bottom || info.first == Expr::Bottom {
        for name in p1.scalars.keys() {
            out.clobbered_scalars.push(name.clone());
        }
        for w in &p1.writes {
            if !out.clobbered_arrays.contains(&w.array) {
                out.clobbered_arrays.push(w.array.clone());
            }
        }
        return out;
    }

    aggregate_scalars(p1, &mut out);
    aggregate_array_writes(p1, entry_env, &mut out);
    out
}

fn aggregate_scalars(p1: &Phase1Result, out: &mut CollapsedLoop) {
    let info = &p1.info;
    for (name, range) in &p1.scalars {
        if range.is_unknown() {
            out.clobbered_scalars.push(name.clone());
            continue;
        }
        // Bounds that reference λ of *other* scalars or array elements are
        // beyond the current aggregation algebra.
        let foreign_lambda = |e: &Expr| e.contains_any_lambda() && !e.contains_lambda(name);
        if foreign_lambda(&range.lo)
            || foreign_lambda(&range.hi)
            || range.lo.contains_any_array_ref()
            || range.hi.contains_any_array_ref()
        {
            out.clobbered_scalars.push(name.clone());
            continue;
        }
        match aggregate_scalar_range(
            name,
            &range.lo,
            &range.hi,
            &info.var,
            &info.first,
            &info.last,
        ) {
            Some((lo, hi)) => {
                out.scalar_exit.insert(name.clone(), SymRange::new(lo, hi));
            }
            None => out.clobbered_scalars.push(name.clone()),
        }
    }
}

fn aggregate_array_writes(p1: &Phase1Result, entry_env: &Env, out: &mut CollapsedLoop) {
    let info = &p1.info;
    // Group writes by array; arrays with several distinct writes in one
    // iteration are summarized write-by-write (each contributes its own
    // fact), but a single unknown write clobbers the whole array.
    for w in &p1.writes {
        if out.clobbered_arrays.contains(&w.array) {
            continue;
        }
        match summarize_write(w, p1, entry_env) {
            WriteSummary::Fact(fact) => merge_fact(out, fact),
            WriteSummary::Clobber => {
                out.array_facts.retain(|f| f.array != w.array);
                out.clobbered_arrays.push(w.array.clone());
            }
        }
    }
    validate_guarded_facts(p1, entry_env, out);
    let _ = info;
}

/// Guarded (subset) facts claim "the elements with non-negative values are
/// injective/monotonic".  That is only sound when the loop demonstrably
/// writes *every* other element a negative value (the Figure 5 pattern:
/// matched rows get unique indices, unmatched rows get -1).  Facts whose
/// complementary writes cannot be proven negative are dropped.
fn validate_guarded_facts(p1: &Phase1Result, entry_env: &Env, out: &mut CollapsedLoop) {
    let info = &p1.info;
    let mut asm = entry_env.assumptions.clone();
    if info.first != Expr::Bottom && info.last != Expr::Bottom && !info.var.is_empty() {
        asm.assume_range(info.var.clone(), info.index_range());
    }
    for fact in &mut out.array_facts {
        if fact.guarded.is_empty() {
            continue;
        }
        let writes: Vec<&WriteRecord> =
            p1.writes.iter().filter(|w| w.array == fact.array).collect();
        let negative = |w: &WriteRecord| {
            w.value.hi != Expr::Bottom && asm.prove_le(&w.value.hi, &Expr::Int(-1)).is_proven()
        };
        let nonneg = |w: &WriteRecord| {
            w.value.lo != Expr::Bottom && asm.prove_nonneg(&w.value.lo).is_proven()
        };
        let negative_writes = writes.iter().filter(|w| negative(w)).count();
        let other_writes: Vec<&&WriteRecord> = writes.iter().filter(|w| !negative(w)).collect();
        let sound = negative_writes >= 1 && other_writes.len() == 1 && nonneg(other_writes[0]);
        if !sound {
            fact.guarded.clear();
        }
    }
}

// One short-lived value per analyzed write; the variant size gap is fine.
#[allow(clippy::large_enum_variant)]
enum WriteSummary {
    Fact(ArrayFact),
    Clobber,
}

fn merge_fact(out: &mut CollapsedLoop, fact: ArrayFact) {
    if let Some(existing) = out.array_facts.iter_mut().find(|f| f.array == fact.array) {
        // Two different writes to the same array in one iteration: keep the
        // properties both establish, widen the section and value range.
        existing.index_range = existing.index_range.union(&fact.index_range);
        existing.value_range = match (&existing.value_range, &fact.value_range) {
            (Some(a), Some(b)) => Some(a.union(b)),
            _ => None,
        };
        existing.properties = existing.properties.meet(&fact.properties);
        existing.guarded.extend(fact.guarded);
        existing.origin = format!("{}; {}", existing.origin, fact.origin);
    } else {
        out.array_facts.push(fact);
    }
}

fn summarize_write(w: &WriteRecord, p1: &Phase1Result, entry_env: &Env) -> WriteSummary {
    let info = &p1.info;
    if w.under_unknown_guard {
        // Writes under a condition the analysis cannot represent: the only
        // sound summary is "this array was modified somehow".
        return WriteSummary::Clobber;
    }
    if w.subscript == Expr::Bottom {
        return WriteSummary::Clobber;
    }
    // The paper's "simple subscript" restriction: the subscript must be
    // affine in the loop index with unit coefficient (i + k).  Larger
    // constant strides are also handled since the generalization is free.
    let Some((coeff, offset)) = affine_in(&w.subscript, &info.var) else {
        return WriteSummary::Clobber;
    };
    if coeff <= 0 || offset.contains_any_lambda() || offset.contains_any_array_ref() {
        return WriteSummary::Clobber;
    }
    // Subscript range across the iteration space.
    let first_sub = simplify(&Expr::add(
        Expr::mul(Expr::Int(coeff), info.first.clone()),
        offset.clone(),
    ));
    let last_sub = simplify(&Expr::add(
        Expr::mul(Expr::Int(coeff), info.last.clone()),
        offset.clone(),
    ));
    let index_range = SymRange::new(first_sub, last_sub);

    let mut fact = ArrayFact::new(w.array.clone(), index_range).with_origin(format!(
        "phase2 aggregation of loop {} (subscript {})",
        info.id, w.subscript
    ));

    // Classify the written value.
    let classification = classify_value(w, p1, entry_env, coeff, &offset);
    match classification {
        ValueClass::Recurrence { nonneg, strict } => {
            if nonneg {
                if strict {
                    fact = fact.with_property(ArrayProperty::StrictMonotonicInc);
                } else {
                    fact = fact.with_property(ArrayProperty::MonotonicInc);
                }
            } else {
                // A recurrence with unknown-sign increment: no property.
            }
        }
        ValueClass::AffineInIndex {
            coeff: vc,
            offset: voff,
        } => {
            // element at subscript coeff*i + k gets value vc*i + voff:
            // strictly monotonic in the subscript when vc > 0 (resp. < 0).
            if vc > 0 {
                fact = fact.with_property(ArrayProperty::StrictMonotonicInc);
                if vc == coeff && ss_symbolic::sym_eq(&voff, &offset) {
                    fact = fact.with_property(ArrayProperty::Identity);
                }
            } else if vc < 0 {
                fact = fact.with_property(ArrayProperty::StrictMonotonicDec);
            }
            let v_first = simplify(&Expr::add(
                Expr::mul(Expr::Int(vc), info.first.clone()),
                voff.clone(),
            ));
            let v_last = simplify(&Expr::add(
                Expr::mul(Expr::Int(vc), info.last.clone()),
                voff.clone(),
            ));
            let vr = if vc >= 0 {
                SymRange::new(v_first, v_last)
            } else {
                SymRange::new(v_last, v_first)
            };
            if entry_env.assumptions.prove_nonneg(&vr.lo).is_proven() {
                fact = fact.with_property(ArrayProperty::NonNegative);
            }
            fact = fact.with_value_range(vr);
        }
        ValueClass::Invariant(vr) => {
            if !vr.has_unknown_bound() && entry_env.assumptions.prove_nonneg(&vr.lo).is_proven() {
                fact = fact.with_property(ArrayProperty::NonNegative);
            }
            if !vr.has_unknown_bound() {
                fact = fact.with_value_range(vr);
            }
        }
        ValueClass::Unknown => {}
    }

    // Guarded writes only establish subset facts: whatever property the
    // unguarded analysis would have derived holds for the subset of elements
    // that were actually written, which is in general unknown. The paper's
    // usable special case is a guard on the *written value's* sign (not
    // needed for the filling loops we analyze), so a guarded write keeps the
    // value range (as a may-range) but drops section properties.
    if !w.guards.is_empty() {
        let props = std::mem::take(&mut fact.properties);
        if !props.is_empty() {
            fact = fact.with_guarded(ValueFilter::non_negative(), props);
        }
        fact.properties = PropertySet::empty();
        // The value range is also only a may-fact for the written subset.
        fact.value_range = None;
    }
    WriteSummary::Fact(fact)
}

enum ValueClass {
    /// `a[i] = a[i-1] + inc` with `inc >= 0` (and `>= 1` when `strict`).
    Recurrence { nonneg: bool, strict: bool },
    /// Value is affine in the loop index: `coeff * i + offset`.
    AffineInIndex { coeff: i64, offset: Expr },
    /// Value is loop-invariant with the given range.
    Invariant(SymRange),
    /// None of the supported shapes.
    Unknown,
}

fn classify_value(
    w: &WriteRecord,
    p1: &Phase1Result,
    entry_env: &Env,
    sub_coeff: i64,
    sub_offset: &Expr,
) -> ValueClass {
    let info = &p1.info;
    // 1. Self-recurrence: the exact value references the previous element of
    //    the same array (subscript - stride).
    if w.value_exact != Expr::Bottom && w.value_exact.contains_array_ref(&w.array) {
        let prev_index = simplify(&Expr::sub(w.subscript.clone(), Expr::Int(sub_coeff)));
        let increment = simplify_diff(
            &w.value_exact,
            &Expr::ArrayRef(w.array.clone(), Box::new(prev_index.clone())),
        );
        if increment.contains_array_ref(&w.array) || increment.contains_any_lambda() {
            return ValueClass::Unknown;
        }
        // Substitute known element-value ranges for array references inside
        // the increment (e.g. rowsize[i-1] -> [0 : COLUMNLEN-1]) and check
        // the sign of the resulting lower bound.
        let lower_subst = substitute_array_lower_bounds(&increment, entry_env, p1);
        let mut asm = p1.exit_env.assumptions.clone();
        if info.first != Expr::Bottom && info.last != Expr::Bottom {
            asm.assume_range(info.var.clone(), info.index_range());
        }
        let nonneg =
            asm.prove_nonneg(&lower_subst).is_proven() || asm.prove_nonneg(&increment).is_proven();
        let strict = asm.prove_le(&Expr::Int(1), &lower_subst).is_proven()
            || asm.prove_le(&Expr::Int(1), &increment).is_proven();
        return ValueClass::Recurrence { nonneg, strict };
    }
    let _ = sub_offset;
    // 2. Affine in the loop index.
    if w.value_exact != Expr::Bottom && !w.value_exact.contains_any_lambda() {
        if let Some((c, off)) = affine_in(&w.value_exact, &info.var) {
            if c != 0 && !off.contains_any_array_ref() && !off.contains_sym(&info.var) {
                return ValueClass::AffineInIndex {
                    coeff: c,
                    offset: off,
                };
            }
        }
    }
    // 3. Loop-invariant value range (no loop index, no λ).
    if !w.value.mentions_lambda()
        && !w.value.mentions_sym(&info.var)
        && !w.value.has_unknown_bound()
    {
        return ValueClass::Invariant(w.value.clone());
    }
    // 3b. Value range over λ of a scalar whose per-iteration effect is known
    //     to stay within a λ-free envelope: the paper's rowsize example has
    //     value range [0 : COLUMNLEN-1] because `count` was aggregated by the
    //     inner collapsed loop before the write. That case arrives here
    //     already λ-free; anything still carrying λ is unknown.
    ValueClass::Unknown
}

/// Replaces array references inside `e` with the *lower bound* of their known
/// element-value ranges (from the entry environment), so that a non-negative
/// result proves the original expression non-negative.
fn substitute_array_lower_bounds(e: &Expr, entry_env: &Env, p1: &Phase1Result) -> Expr {
    let mut out = e.clone();
    for array in e.array_names() {
        let known = entry_env
            .array_value(&array)
            .or_else(|| p1.exit_env.array_value(&array));
        if let Some(r) = known {
            if r.lo != Expr::Bottom {
                let lo = r.lo.clone();
                out = subst_array_ref(&out, &array, &|_| lo.clone());
            }
        }
    }
    simplify(&out)
}

/// Substitutes the loop-entry value of every `Λ(x)` placeholder (used when a
/// collapsed loop is applied at a point where the entry values are known).
pub fn instantiate_at_entry(range: &SymRange, env: &Env) -> SymRange {
    SymRange {
        lo: instantiate_bound(&range.lo, env, true),
        hi: instantiate_bound(&range.hi, env, false),
    }
}

/// Instantiates one bound of a collapsed-loop range: `Λ(x)` placeholders take
/// the entry value of `x` (the matching bound of a range-valued entry, since
/// all closed forms produced here have `Λ` with coefficient +1), and program
/// symbols with exactly-known entry values are resolved.
fn instantiate_bound(bound: &Expr, env: &Env, is_lower: bool) -> Expr {
    if *bound == Expr::Bottom {
        return Expr::Bottom;
    }
    let mut cur = bound.clone();
    let mut names = Vec::new();
    cur.for_each_node(&mut |n| {
        if let Expr::BigLambda(s) = n {
            if !names.contains(s) {
                names.push(s.clone());
            }
        }
    });
    for name in names {
        let entry = env.scalar(&name);
        let replacement = if let Some(v) = entry.as_exact() {
            v.clone()
        } else if is_lower {
            entry.lo.clone()
        } else {
            entry.hi.clone()
        };
        if replacement == Expr::Bottom {
            return Expr::Bottom;
        }
        cur = simplify(&ss_symbolic::subst::subst_big_lambda(
            &cur,
            &name,
            &replacement,
        ));
    }
    // Resolve remaining program symbols with exactly-known entry values.
    for name in cur.clone().symbols() {
        if env.has_scalar(&name) {
            if let Some(v) = env.scalar(&name).as_exact() {
                cur = subst_sym(&cur, &name, v);
            }
        }
    }
    simplify(&cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase1::phase1;
    use ss_ir::loops::LoopTree;
    use ss_ir::parser::parse_program;
    use ss_rangeprop::NoSummaries;

    fn collapse_first_loop(src: &str, entry: &Env) -> CollapsedLoop {
        let p = parse_program("t", src).unwrap();
        let t = LoopTree::build(&p);
        let info = t.get(ss_ir::LoopId(0)).unwrap();
        let ss_ir::Stmt::For { body, .. } = &p.body[0] else {
            panic!()
        };
        let p1 = phase1(info, body, entry, &NoSummaries);
        phase2(&p1, entry)
    }

    #[test]
    fn paper_phase2_of_loop13_derives_monotonicity() {
        // Phase 2 (13): rowptr : [1 : ROWLEN], Monotonic_inc
        let mut entry = Env::new();
        entry.set_array_value(
            "rowsize",
            SymRange::new(
                Expr::int(0),
                Expr::sub(Expr::sym("COLUMNLEN"), Expr::int(1)),
            ),
        );
        let c = collapse_first_loop(
            "for (i = 1; i < ROWLEN + 1; i++) { rowptr[i] = rowptr[i-1] + rowsize[i-1]; }",
            &entry,
        );
        let fact = c.fact("rowptr").expect("rowptr fact");
        assert!(fact.has(ArrayProperty::MonotonicInc));
        assert!(!fact.has(ArrayProperty::StrictMonotonicInc));
        assert_eq!(fact.index_range.lo, Expr::Int(1));
        assert_eq!(fact.index_range.hi, Expr::sym("ROWLEN"));
        assert!(c.clobbered_arrays.is_empty());
    }

    #[test]
    fn recurrence_with_positive_increment_is_strict() {
        let mut entry = Env::new();
        entry.set_array_value("len", SymRange::new(Expr::int(1), Expr::sym("K")));
        let c = collapse_first_loop(
            "for (i = 1; i <= N; i++) { start[i] = start[i-1] + len[i-1]; }",
            &entry,
        );
        let fact = c.fact("start").unwrap();
        assert!(fact.has(ArrayProperty::StrictMonotonicInc));
        assert!(fact.has(ArrayProperty::Injective));
    }

    #[test]
    fn recurrence_with_unknown_sign_gets_no_property() {
        let c = collapse_first_loop(
            "for (i = 1; i <= N; i++) { a[i] = a[i-1] + delta[i-1]; }",
            &Env::new(),
        );
        let fact = c.fact("a").unwrap();
        assert!(fact.properties.is_empty());
    }

    #[test]
    fn loop_invariant_value_keeps_range_and_nonnegativity() {
        // rowsize[i] = count with count in [0 : COLUMNLEN-1] at every
        // iteration (this is what the collapsed inner loop provides).
        let mut entry = Env::new();
        entry.set_scalar(
            "count",
            SymRange::new(
                Expr::int(0),
                Expr::sub(Expr::sym("COLUMNLEN"), Expr::int(1)),
            ),
        );
        let c = collapse_first_loop(
            "for (i = 0; i < ROWLEN; i++) { rowsize[i] = count; }",
            &entry,
        );
        let fact = c.fact("rowsize").unwrap();
        assert_eq!(fact.index_range.lo, Expr::Int(0));
        assert_eq!(
            fact.index_range.hi,
            simplify(&Expr::sub(Expr::sym("ROWLEN"), Expr::int(1)))
        );
        let vr = fact.value_range.as_ref().unwrap();
        assert_eq!(vr.lo, Expr::Int(0));
        assert!(fact.has(ArrayProperty::NonNegative));
    }

    #[test]
    fn identity_and_affine_fills_are_strictly_monotonic() {
        let c = collapse_first_loop("for (k = 0; k < n; k++) { p[k] = k; }", &Env::new());
        let fact = c.fact("p").unwrap();
        assert!(fact.has(ArrayProperty::Identity));
        assert!(fact.has(ArrayProperty::Injective));
        assert!(fact.has(ArrayProperty::NonNegative));
        // affine with stride 7 and symbolic base
        let c = collapse_first_loop(
            "for (k = 0; k < n; k++) { tree[k] = base + 7 * k; }",
            &Env::new(),
        );
        let fact = c.fact("tree").unwrap();
        assert!(fact.has(ArrayProperty::StrictMonotonicInc));
        assert!(!fact.has(ArrayProperty::Identity));
        // decreasing fill
        let c = collapse_first_loop("for (k = 0; k < n; k++) { q[k] = 0 - k; }", &Env::new());
        let fact = c.fact("q").unwrap();
        assert!(fact.has(ArrayProperty::StrictMonotonicDec));
    }

    #[test]
    fn scalar_recurrences_aggregate_to_closed_forms() {
        // count: [λ : λ+1] per iteration over COLUMNLEN iterations
        let p = parse_program(
            "t",
            "for (j = 0; j < COLUMNLEN; j++) { if (flag[j] > 0) { count++; } }",
        )
        .unwrap();
        let t = LoopTree::build(&p);
        let info = t.get(ss_ir::LoopId(0)).unwrap();
        let ss_ir::Stmt::For { body, .. } = &p.body[0] else {
            panic!()
        };
        let entry = Env::new();
        let p1 = phase1(info, body, &entry, &NoSummaries);
        let c = phase2(&p1, &entry);
        let count = c.scalar_exit.get("count").unwrap();
        assert_eq!(count.lo, Expr::big_lambda("count"));
        assert_eq!(
            count.hi,
            simplify(&Expr::add(
                Expr::big_lambda("count"),
                Expr::sym("COLUMNLEN")
            ))
        );
        // instantiation at an entry where count = 0
        let mut env = Env::new();
        env.set_scalar("count", SymRange::constant(0, 0));
        let inst = instantiate_at_entry(count, &env);
        assert_eq!(inst.lo, Expr::Int(0));
        assert_eq!(inst.hi, Expr::sym("COLUMNLEN"));
    }

    #[test]
    fn guarded_writes_only_produce_subset_facts() {
        // The Figure 5 filling pattern: matched elements get unique
        // non-negative indices, everything else gets -1. The subset fact
        // "non-negative values are injective" is sound and recorded.
        let c = collapse_first_loop(
            "for (i = 0; i < n; i++) { if (keep[i] > 0) { sel[i] = i; } else { sel[i] = 0 - 1; } }",
            &Env::new(),
        );
        let fact = c.fact("sel").unwrap();
        assert!(fact.properties.is_empty());
        assert!(!fact.guarded.is_empty());
        assert!(fact
            .guarded
            .iter()
            .any(|g| g.properties.has(ArrayProperty::Injective)));
        // Without the complementary negative write the subset claim is not
        // sound (unwritten elements could hold arbitrary non-negative
        // duplicates) and must be dropped.
        let c = collapse_first_loop(
            "for (i = 0; i < n; i++) { if (keep[i] > 0) { sel[i] = i; } }",
            &Env::new(),
        );
        let fact = c.fact("sel").unwrap();
        assert!(fact.properties.is_empty());
        assert!(fact.guarded.is_empty());
    }

    #[test]
    fn unanalyzable_writes_clobber() {
        // subscripted-subscript write in the filling loop itself: the written
        // section is not a simple range.
        let c = collapse_first_loop(
            "for (i = 0; i < n; i++) { x[mapping[i]] = i; }",
            &Env::new(),
        );
        assert!(c.fact("x").is_none());
        assert!(c.clobbered_arrays.contains(&"x".to_string()));
        // while loops clobber everything
        let p = parse_program("t", "while (x < n) { a[x] = 0; x = x + 1; }").unwrap();
        let t = LoopTree::build(&p);
        let info = t.get(ss_ir::LoopId(0)).unwrap();
        let ss_ir::Stmt::While { body, .. } = &p.body[0] else {
            panic!()
        };
        let p1 = phase1(info, body, &Env::new(), &NoSummaries);
        let c = phase2(&p1, &Env::new());
        assert!(c.clobbered_arrays.contains(&"a".to_string()));
        assert!(c.clobbered_scalars.contains(&"x".to_string()));
    }

    #[test]
    fn strided_subscripts_expand_their_section() {
        let c = collapse_first_loop("for (i = 0; i < n; i++) { s[2*i + 1] = 5; }", &Env::new());
        let fact = c.fact("s").unwrap();
        assert_eq!(fact.index_range.lo, Expr::Int(1));
        assert_eq!(
            fact.index_range.hi,
            simplify(&Expr::add(
                Expr::mul(Expr::int(2), Expr::sub(Expr::sym("n"), Expr::int(1))),
                Expr::int(1)
            ))
        );
        assert_eq!(fact.value_range.as_ref().unwrap().as_const(), Some((5, 5)));
    }
}
