//! # ss-aggregation — Phase 1 / Phase 2 loop aggregation
//!
//! The paper's core compile-time algorithm (Section 3):
//!
//! * [`phase1::phase1`] — the effect of one loop iteration, with scalars
//!   initialized to `λ(..)` and array writes recorded symbolically;
//! * [`phase2::phase2`] — aggregation of that effect across the iteration
//!   space, producing scalar closed forms over `Λ(..)`, array-section value
//!   ranges, and index-array **properties** (Monotonic inc/dec, strict
//!   variants, Injective, Identity, NonNegative, guarded subsets);
//! * [`collapse::analyze_program`] — the whole-program driver that collapses
//!   loop nests inside out in program order and builds the
//!   [`ss_properties::PropertyDatabase`] the dependence test consumes.
//!
//! The doctest below reproduces the headline derivation of the paper's
//! Figure 9 / Section 3.5: `rowptr` is proven monotonically increasing from
//! the CSR-construction code alone.
//!
//! ```
//! use ss_aggregation::analyze_program;
//! use ss_ir::parse_program;
//! use ss_properties::ArrayProperty;
//!
//! let program = parse_program("fig9", r#"
//!     for (i = 0; i < ROWLEN; i++) {
//!         count = 0;
//!         for (j = 0; j < COLUMNLEN; j++) {
//!             if (a[i][j] != 0) { count++; }
//!         }
//!         rowsize[i] = count;
//!     }
//!     rowptr[0] = 0;
//!     for (i = 1; i < ROWLEN + 1; i++) {
//!         rowptr[i] = rowptr[i-1] + rowsize[i-1];
//!     }
//! "#).unwrap();
//! let analysis = analyze_program(&program);
//! assert!(analysis.db.has_property("rowptr", ArrayProperty::MonotonicInc));
//! ```

pub mod collapse;
pub mod phase1;
pub mod phase2;

pub use collapse::{analyze_program, apply_summary, ProgramAnalysis};
pub use phase1::{assigned_scalars, phase1, Phase1Result};
pub use phase2::{instantiate_at_entry, phase2, CollapsedLoop};
