//! Sparse-matrix substrate: CSR storage and the kernels that exhibit the
//! paper's subscripted-subscript patterns.
//!
//! The CSR (compressed sparse row) format is exactly the data structure the
//! paper's motivating example (Figure 9) constructs: `rowptr` is monotone
//! non-decreasing, `colidx`/`values` hold the per-row entries in
//! `rowptr[i] .. rowptr[i+1]`.

use crate::pool::{parallel_for, parallel_for_mut, parallel_sum};

/// A CSR matrix with `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Row pointer (length `nrows + 1`, monotone non-decreasing).
    pub rowptr: Vec<usize>,
    /// Column index of each stored entry.
    pub colidx: Vec<usize>,
    /// Value of each stored entry.
    pub values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from a dense row-major matrix, using the exact
    /// count / prefix-sum / fill structure of Figure 9.
    pub fn from_dense(dense: &[Vec<f64>]) -> CsrMatrix {
        let nrows = dense.len();
        let ncols = dense.first().map(|r| r.len()).unwrap_or(0);
        // lines 1–10: per-row non-zero counts and gathered entries
        let mut rowsize = vec![0usize; nrows];
        let mut colidx = Vec::new();
        let mut values = Vec::new();
        for (i, row) in dense.iter().enumerate() {
            let mut count = 0;
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    count += 1;
                    colidx.push(j);
                    values.push(v);
                }
            }
            rowsize[i] = count;
        }
        // lines 12–15: prefix sum (the monotone rowptr)
        let mut rowptr = vec![0usize; nrows + 1];
        for i in 1..=nrows {
            rowptr[i] = rowptr[i - 1] + rowsize[i - 1];
        }
        CsrMatrix {
            nrows,
            ncols,
            rowptr,
            colidx,
            values,
        }
    }

    /// Builds a CSR matrix directly from per-row `(column, value)` lists.
    pub fn from_rows(ncols: usize, rows: &[Vec<(usize, f64)>]) -> CsrMatrix {
        let nrows = rows.len();
        let mut rowptr = vec![0usize; nrows + 1];
        for i in 0..nrows {
            rowptr[i + 1] = rowptr[i] + rows[i].len();
        }
        let nnz = rowptr[nrows];
        let mut colidx = vec![0usize; nnz];
        let mut values = vec![0.0f64; nnz];
        for (i, row) in rows.iter().enumerate() {
            let base = rowptr[i];
            for (k, &(c, v)) in row.iter().enumerate() {
                colidx[base + k] = c;
                values[base + k] = v;
            }
        }
        CsrMatrix {
            nrows,
            ncols,
            rowptr,
            colidx,
            values,
        }
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Checks the CSR invariants (monotone rowptr, in-range column indices).
    pub fn is_well_formed(&self) -> bool {
        self.rowptr.len() == self.nrows + 1
            && self.rowptr[0] == 0
            && *self.rowptr.last().unwrap() == self.values.len()
            && self.rowptr.windows(2).all(|w| w[0] <= w[1])
            && self.colidx.len() == self.values.len()
            && self.colidx.iter().all(|&c| c < self.ncols.max(1))
    }

    /// Sparse matrix–vector product `y = A x`, serial.
    pub fn spmv_serial(&self, x: &[f64], y: &mut [f64]) {
        self.spmv(1, x, y);
    }

    /// Sparse matrix–vector product `y = A x` using `threads` threads.
    ///
    /// The row loop is exactly the Figure 3 / Figure 9 pattern: iteration `j`
    /// touches `colidx[rowstr[j] .. rowstr[j+1]]`; its parallelization is
    /// licensed by `rowptr`'s monotonicity.
    pub fn spmv(&self, threads: usize, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        let rowptr = &self.rowptr;
        let colidx = &self.colidx;
        let values = &self.values;
        parallel_for_mut(threads, y, |start, chunk| {
            for (k, out) in chunk.iter_mut().enumerate() {
                let row = start + k;
                let mut sum = 0.0;
                for idx in rowptr[row]..rowptr[row + 1] {
                    sum += values[idx] * x[colidx[idx]];
                }
                *out = sum;
            }
        });
    }

    /// The Figure 3 kernel: shift every stored column index by `-firstcol`,
    /// row-parallel (licensed by `rowptr` monotonicity).
    pub fn shift_column_indices(&mut self, threads: usize, firstcol: usize) {
        let rowptr = self.rowptr.clone();
        let nrows = self.nrows;
        let colidx = &mut self.colidx;
        // Partition the colidx storage by rows: each thread handles a
        // contiguous block of rows and therefore a contiguous block of
        // colidx — disjoint because rowptr is monotone.
        parallel_for(threads, nrows, |rows| {
            let lo = rowptr[rows.start];
            let hi = rowptr[rows.end];
            // Safety of the parallel mutation is expressed through raw
            // pointers split per disjoint range; we keep it simple and safe by
            // operating on an UnsafeCell-free approach: each thread writes a
            // disjoint index range of the same vector.  Rust cannot see the
            // disjointness through `&mut`, so we go through a raw pointer.
            let ptr = colidx.as_ptr() as *mut usize;
            for idx in lo..hi {
                // SAFETY: ranges [rowptr[rows.start], rowptr[rows.end]) are
                // pairwise disjoint across chunks because rowptr is monotone
                // non-decreasing (the property the compile-time analysis
                // proved), and each index is visited exactly once.
                unsafe {
                    *ptr.add(idx) -= firstcol;
                }
            }
        });
    }

    /// `y = A x` followed by the dot products used by CG, all with the same
    /// thread count. Returns `(||r||, x·y)` style values needed by the solver.
    pub fn spmv_and_dot(&self, threads: usize, x: &[f64], y: &mut [f64]) -> f64 {
        self.spmv(threads, x, y);
        parallel_sum(threads, self.nrows, |i| x[i] * y[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dense() -> Vec<Vec<f64>> {
        vec![
            vec![4.0, 0.0, 1.0, 0.0],
            vec![0.0, 3.0, 0.0, 0.0],
            vec![1.0, 0.0, 5.0, 2.0],
            vec![0.0, 0.0, 2.0, 6.0],
        ]
    }

    #[test]
    fn from_dense_builds_well_formed_csr() {
        let a = CsrMatrix::from_dense(&small_dense());
        assert!(a.is_well_formed());
        assert_eq!(a.nnz(), 8);
        assert_eq!(a.rowptr, vec![0, 2, 3, 6, 8]);
        assert_eq!(a.colidx, vec![0, 2, 1, 0, 2, 3, 2, 3]);
    }

    #[test]
    fn from_rows_matches_from_dense() {
        let dense = small_dense();
        let rows: Vec<Vec<(usize, f64)>> = dense
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .filter(|(_, &v)| v != 0.0)
                    .map(|(j, &v)| (j, v))
                    .collect()
            })
            .collect();
        assert_eq!(
            CsrMatrix::from_rows(4, &rows),
            CsrMatrix::from_dense(&dense)
        );
    }

    #[test]
    fn spmv_matches_dense_product_for_all_thread_counts() {
        let dense = small_dense();
        let a = CsrMatrix::from_dense(&dense);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let mut expected = vec![0.0; 4];
        for i in 0..4 {
            expected[i] = (0..4).map(|j| dense[i][j] * x[j]).sum();
        }
        for threads in [1, 2, 3, 8] {
            let mut y = vec![0.0; 4];
            a.spmv(threads, &x, &mut y);
            assert_eq!(y, expected, "threads = {threads}");
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn column_shift_is_identical_serial_and_parallel() {
        let mut dense = Vec::new();
        for i in 0..64 {
            let mut row = vec![0.0; 128];
            for j in 0..128 {
                if (i * 7 + j) % 5 == 0 {
                    row[j] = (i + j) as f64;
                }
            }
            dense.push(row);
        }
        let base = CsrMatrix::from_dense(&dense);
        let mut serial = base.clone();
        serial.shift_column_indices(1, 0);
        for threads in [2, 4, 8] {
            let mut par = base.clone();
            par.shift_column_indices(threads, 0);
            assert_eq!(par, serial);
        }
        // a real shift
        let mut shifted = base.clone();
        shifted.shift_column_indices(4, 0);
        assert_eq!(shifted, base);
    }

    #[test]
    fn spmv_and_dot_is_consistent() {
        let a = CsrMatrix::from_dense(&small_dense());
        let x = vec![1.0, 1.0, 1.0, 1.0];
        let mut y1 = vec![0.0; 4];
        let d1 = a.spmv_and_dot(1, &x, &mut y1);
        let mut y4 = vec![0.0; 4];
        let d4 = a.spmv_and_dot(4, &x, &mut y4);
        assert_eq!(y1, y4);
        assert!((d1 - d4).abs() < 1e-12);
    }
}
