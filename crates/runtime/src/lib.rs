//! # ss-runtime — parallel loop runtime and sparse-matrix substrate
//!
//! The execution substrate for the paper's evaluation: an OpenMP-style
//! `parallel for` built on crossbeam scoped threads ([`pool`]), CSR sparse
//! matrices with the subscripted-subscript kernels ([`sparse`]), and wall
//! clock timing helpers ([`timer`]).

pub mod pool;
pub mod sparse;
pub mod team;
pub mod timer;

pub use pool::{
    chunk_ranges, hardware_threads, parallel_for, parallel_for_mut, parallel_for_schedule,
    parallel_reduce, parallel_sum, Schedule,
};
pub use sparse::CsrMatrix;
pub use team::{
    shared_team_count, team_parallel_for_schedule, team_parallel_reduce, team_threads_spawned,
    with_shared_team, with_shared_team_in, ThreadTeam,
};
pub use timer::{time_it, Timer};
