//! Wall-clock timing helpers used by the benchmark harness.

use std::time::{Duration, Instant};

/// A simple accumulating timer.
#[derive(Debug, Default, Clone)]
pub struct Timer {
    total: Duration,
    started: Option<Instant>,
}

impl Timer {
    /// A stopped timer with zero accumulated time.
    pub fn new() -> Timer {
        Timer::default()
    }

    /// Starts (or restarts) the timer.
    pub fn start(&mut self) {
        self.started = Some(Instant::now());
    }

    /// Stops the timer, accumulating the elapsed time.
    pub fn stop(&mut self) {
        if let Some(s) = self.started.take() {
            self.total += s.elapsed();
        }
    }

    /// Accumulated time in seconds.
    pub fn seconds(&self) -> f64 {
        self.total.as_secs_f64()
    }

    /// Resets the accumulated time.
    pub fn reset(&mut self) {
        self.total = Duration::ZERO;
        self.started = None;
    }
}

/// Times a closure, returning `(result, seconds)`.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_accumulates() {
        let mut t = Timer::new();
        assert_eq!(t.seconds(), 0.0);
        t.start();
        std::thread::sleep(Duration::from_millis(5));
        t.stop();
        let first = t.seconds();
        assert!(first > 0.0);
        t.start();
        std::thread::sleep(Duration::from_millis(5));
        t.stop();
        assert!(t.seconds() > first);
        t.reset();
        assert_eq!(t.seconds(), 0.0);
        // stop without start is a no-op
        t.stop();
        assert_eq!(t.seconds(), 0.0);
    }

    #[test]
    fn time_it_returns_result_and_duration() {
        let (v, secs) = time_it(|| (0..1000).sum::<u64>());
        assert_eq!(v, 499500);
        assert!(secs >= 0.0);
    }
}
