//! Parallel loop execution.
//!
//! The paper evaluates its analysis by compiling the parallelized loops with
//! OpenMP (`#pragma omp parallel for`, static scheduling) and sweeping the
//! thread count.  This module is the equivalent substrate: [`parallel_for`]
//! splits an iteration space into contiguous chunks and runs them on scoped
//! threads (crossbeam), and [`parallel_for_mut`] does the same while handing
//! each thread a disjoint slice of the output vector.
//!
//! [`parallel_for_schedule`] additionally offers OpenMP's `schedule(dynamic)`
//! counterpart: workers steal fixed-size chunks off a shared atomic counter,
//! which keeps threads busy when per-iteration work is skewed (e.g. CSR rows
//! of wildly different lengths, the common case for subscripted-subscript
//! loops over `rowptr[i] .. rowptr[i+1]`).

use std::sync::atomic::{AtomicUsize, Ordering};

/// How [`parallel_for_schedule`] assigns iterations to worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// One contiguous, nearly equal range per thread (OpenMP
    /// `schedule(static)`), assigned up front.  Zero scheduling overhead,
    /// but a thread stuck with the heavy iterations becomes the critical
    /// path.
    Static,
    /// Workers repeatedly claim the next `chunk` iterations from a shared
    /// atomic counter (OpenMP `schedule(dynamic, chunk)`).  One
    /// fetch-and-add per chunk buys load balance on skewed iteration
    /// spaces.
    Dynamic {
        /// Iterations claimed per steal; clamped to at least 1.
        chunk: usize,
    },
}

impl Schedule {
    /// A dynamic schedule with a chunk size that amortizes the counter
    /// traffic: about 8 chunks per thread, at least 1 iteration each.
    pub fn dynamic_for(n: usize, threads: usize) -> Schedule {
        Schedule::Dynamic {
            chunk: (n / (threads.max(1) * 8)).max(1),
        }
    }
}

/// Splits `0..n` into `chunks` contiguous, nearly equal ranges.
pub fn chunk_ranges(n: usize, chunks: usize) -> Vec<std::ops::Range<usize>> {
    let chunks = chunks.max(1);
    let base = n / chunks;
    let rem = n % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for c in 0..chunks {
        let len = base + usize::from(c < rem);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Runs `body(range)` for a static partition of `0..n` over `threads`
/// threads. With `threads <= 1` the body runs inline (the serial baseline).
pub fn parallel_for<F>(threads: usize, n: usize, body: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    if threads <= 1 || n == 0 {
        body(0..n);
        return;
    }
    let ranges = chunk_ranges(n, threads);
    crossbeam::thread::scope(|scope| {
        for r in ranges {
            let body = &body;
            scope.spawn(move |_| body(r));
        }
    })
    .expect("worker thread panicked");
}

/// Runs `body(range)` over `0..n` on `threads` threads under the given
/// [`Schedule`].  `Schedule::Static` is exactly [`parallel_for`];
/// `Schedule::Dynamic` lets idle workers steal the next chunk, so skewed
/// iteration spaces finish in (roughly) the time of the heaviest single
/// chunk rather than the heaviest precomputed partition.
pub fn parallel_for_schedule<F>(threads: usize, n: usize, schedule: Schedule, body: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    match schedule {
        Schedule::Static => parallel_for(threads, n, body),
        Schedule::Dynamic { chunk } => {
            if threads <= 1 || n == 0 {
                body(0..n);
                return;
            }
            let chunk = chunk.max(1);
            let next = AtomicUsize::new(0);
            crossbeam::thread::scope(|scope| {
                for _ in 0..threads {
                    let body = &body;
                    let next = &next;
                    scope.spawn(move |_| loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        body(start..(start + chunk).min(n));
                    });
                }
            })
            .expect("worker thread panicked");
        }
    }
}

/// Runs `body(start_index, chunk)` where `chunk` is a disjoint mutable
/// sub-slice of `data`, partitioned statically over `threads` threads.
/// This is the shape of an OpenMP `parallel for` writing `data[i]` — each
/// thread owns a contiguous block, which is exactly what the dependence
/// analysis licensed.
pub fn parallel_for_mut<T, F>(threads: usize, data: &mut [T], body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    if threads <= 1 || n == 0 {
        body(0, data);
        return;
    }
    let ranges = chunk_ranges(n, threads);
    crossbeam::thread::scope(|scope| {
        let mut rest = data;
        let mut consumed = 0;
        for r in ranges {
            let len = r.len();
            let (head, tail) = rest.split_at_mut(len);
            rest = tail;
            let body = &body;
            let start = consumed;
            scope.spawn(move |_| body(start, head));
            consumed += len;
        }
    })
    .expect("worker thread panicked");
}

/// A general parallel reduction over `0..n` under the given [`Schedule`]:
/// every worker folds the ranges it executes into a private partial
/// accumulator starting from `identity`, and the partials are merged with
/// `combine` once all workers have joined.
///
/// `body(range, acc)` must fold every iteration of `range` into `acc` and
/// return the updated accumulator.  For the merge to reproduce the serial
/// result exactly, `combine` must be associative and commutative over the
/// values `body` produces — integer wrapping `+`, `min` and `max` qualify,
/// which is precisely the set of scalar reductions the compile-time
/// analysis licenses for dispatch.
///
/// Under `Schedule::Static` each thread folds one contiguous range; under
/// `Schedule::Dynamic` idle workers steal fixed-size chunks, and each
/// worker still maintains a single private partial across all the chunks
/// it steals (one `combine` per worker, not per chunk).
pub fn parallel_reduce<T, F, C>(
    threads: usize,
    n: usize,
    schedule: Schedule,
    identity: T,
    body: F,
    combine: C,
) -> T
where
    T: Clone + Send,
    F: Fn(std::ops::Range<usize>, T) -> T + Sync,
    C: Fn(T, T) -> T,
{
    if threads <= 1 || n == 0 {
        return body(0..n, identity);
    }
    let partials: Vec<T> = match schedule {
        Schedule::Static => {
            let ranges = chunk_ranges(n, threads);
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = ranges
                    .into_iter()
                    .map(|r| {
                        let body = &body;
                        let id = identity.clone();
                        scope.spawn(move |_| body(r, id))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
            .expect("worker thread panicked")
        }
        Schedule::Dynamic { chunk } => {
            let chunk = chunk.max(1);
            let next = AtomicUsize::new(0);
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let body = &body;
                        let next = &next;
                        let id = identity.clone();
                        scope.spawn(move |_| {
                            let mut acc = id;
                            loop {
                                let start = next.fetch_add(chunk, Ordering::Relaxed);
                                if start >= n {
                                    break;
                                }
                                acc = body(start..(start + chunk).min(n), acc);
                            }
                            acc
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
            .expect("worker thread panicked")
        }
    };
    let mut it = partials.into_iter();
    let first = it.next().expect("at least one worker");
    it.fold(first, combine)
}

/// A parallel sum reduction over `0..n`.
pub fn parallel_sum<F>(threads: usize, n: usize, term: F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    if threads <= 1 || n == 0 {
        return (0..n).map(&term).sum();
    }
    let ranges = chunk_ranges(n, threads);
    let partials: Vec<f64> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| {
                let term = &term;
                scope.spawn(move |_| r.map(term).sum::<f64>())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .expect("worker thread panicked");
    partials.into_iter().sum()
}

/// The number of hardware threads available (used to annotate reports).
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A tiny helper for verifying that work really ran on multiple threads in
/// tests.
pub fn count_invocations<F>(threads: usize, n: usize, body: F) -> usize
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    let counter = AtomicUsize::new(0);
    parallel_for(threads, n, |r| {
        counter.fetch_add(1, Ordering::Relaxed);
        body(r);
    });
    counter.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_the_range_exactly() {
        for n in [0usize, 1, 7, 100, 101, 1024] {
            for c in [1usize, 2, 3, 8, 16] {
                let ranges = chunk_ranges(n, c);
                assert_eq!(ranges.len(), c);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, n);
                // balanced within 1
                let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                assert!(lens.iter().max().unwrap() - lens.iter().min().unwrap() <= 1);
            }
        }
    }

    #[test]
    fn parallel_for_mut_matches_serial() {
        let n = 10_000;
        let mut serial = vec![0u64; n];
        parallel_for_mut(1, &mut serial, |start, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = ((start + k) as u64) * 3 + 1;
            }
        });
        for threads in [2, 3, 8] {
            let mut par = vec![0u64; n];
            parallel_for_mut(threads, &mut par, |start, chunk| {
                for (k, v) in chunk.iter_mut().enumerate() {
                    *v = ((start + k) as u64) * 3 + 1;
                }
            });
            assert_eq!(par, serial);
        }
    }

    #[test]
    fn parallel_sum_matches_serial() {
        let n = 5_000;
        let expected: f64 = (0..n).map(|i| (i as f64).sqrt()).sum();
        for threads in [1, 2, 4, 7] {
            let got = parallel_sum(threads, n, |i| (i as f64).sqrt());
            assert!((got - expected).abs() < 1e-6 * expected.abs().max(1.0));
        }
    }

    #[test]
    fn work_is_split_across_chunks() {
        assert_eq!(count_invocations(4, 100, |_| {}), 4);
        assert_eq!(count_invocations(1, 100, |_| {}), 1);
        // zero-length loops still work
        assert_eq!(count_invocations(4, 0, |_| {}), 1);
    }

    #[test]
    fn hardware_threads_is_positive() {
        assert!(hardware_threads() >= 1);
    }

    #[test]
    fn parallel_reduce_matches_serial_for_sum_min_and_max() {
        let n = 10_000usize;
        let term = |i: usize| ((i as i64).wrapping_mul(0x9e37) % 1001) - 500;
        let expected_sum: i64 = (0..n).map(term).sum();
        let expected_min: i64 = (0..n).map(term).min().unwrap();
        let expected_max: i64 = (0..n).map(term).max().unwrap();
        for threads in [1usize, 2, 3, 8] {
            for schedule in [
                Schedule::Static,
                Schedule::Dynamic { chunk: 7 },
                Schedule::dynamic_for(n, threads),
            ] {
                let sum = parallel_reduce(
                    threads,
                    n,
                    schedule,
                    0i64,
                    |r, acc| r.fold(acc, |a, i| a.wrapping_add(term(i))),
                    |a, b| a.wrapping_add(b),
                );
                assert_eq!(sum, expected_sum, "threads={threads} {schedule:?}");
                let min = parallel_reduce(
                    threads,
                    n,
                    schedule,
                    i64::MAX,
                    |r, acc| r.fold(acc, |a, i| a.min(term(i))),
                    |a: i64, b| a.min(b),
                );
                assert_eq!(min, expected_min);
                let max = parallel_reduce(
                    threads,
                    n,
                    schedule,
                    i64::MIN,
                    |r, acc| r.fold(acc, |a, i| a.max(term(i))),
                    |a: i64, b| a.max(b),
                );
                assert_eq!(max, expected_max);
            }
        }
    }

    #[test]
    fn parallel_reduce_handles_empty_and_degenerate_spaces() {
        assert_eq!(
            parallel_reduce(4, 0, Schedule::Static, 42i64, |_, acc| acc, |a, b| a + b),
            42
        );
        assert_eq!(
            parallel_reduce(
                4,
                1,
                Schedule::Dynamic { chunk: 16 },
                0i64,
                |r, acc| acc + r.len() as i64,
                |a, b| a + b
            ),
            1
        );
    }

    #[test]
    fn dynamic_schedule_covers_every_iteration_exactly_once() {
        use std::sync::atomic::AtomicU32;
        for (n, threads, chunk) in [
            (0usize, 4usize, 3usize),
            (1, 4, 3),
            (97, 3, 5),
            (1000, 8, 1),
            (64, 2, 64),
        ] {
            let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
            parallel_for_schedule(threads, n, Schedule::Dynamic { chunk }, |r| {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "n={n} threads={threads} chunk={chunk}"
            );
        }
    }

    #[test]
    fn dynamic_schedule_matches_static_results() {
        let n = 4096;
        let expected: Vec<u64> = (0..n)
            .map(|i| (i as u64).wrapping_mul(0x9e3779b9))
            .collect();
        for schedule in [
            Schedule::Static,
            Schedule::Dynamic { chunk: 7 },
            Schedule::dynamic_for(n, 4),
        ] {
            let out: Vec<std::sync::atomic::AtomicU64> = (0..n)
                .map(|_| std::sync::atomic::AtomicU64::new(0))
                .collect();
            parallel_for_schedule(4, n, schedule, |r| {
                for i in r {
                    out[i].store((i as u64).wrapping_mul(0x9e3779b9), Ordering::Relaxed);
                }
            });
            let got: Vec<u64> = out.iter().map(|v| v.load(Ordering::Relaxed)).collect();
            assert_eq!(got, expected, "{schedule:?}");
        }
    }

    #[test]
    fn dynamic_for_picks_sane_chunks() {
        assert_eq!(Schedule::dynamic_for(0, 4), Schedule::Dynamic { chunk: 1 });
        assert_eq!(Schedule::dynamic_for(64, 4), Schedule::Dynamic { chunk: 2 });
        assert_eq!(
            Schedule::dynamic_for(10_000, 0),
            Schedule::Dynamic { chunk: 1250 }
        );
    }
}
