//! A persistent worker-thread team.
//!
//! The scoped-thread helpers in [`crate::pool`] spawn and join fresh OS
//! threads for every parallel region.  That is fine for one long loop, but
//! an interpreted program often dispatches *adjacent* parallel loops — a
//! fill loop, a prefix sum, a traversal — and paying a spawn/join cycle per
//! region puts thread creation on the critical path (OpenMP keeps one team
//! alive across `parallel` regions for the same reason).
//!
//! [`ThreadTeam`] spawns its workers once and parks them on a condition
//! variable between regions.  [`ThreadTeam::run`] hands every worker the
//! same borrowed closure and blocks until all of them finish, so the
//! closure may freely borrow stack data — the borrow provably outlives the
//! workers' use of it.  [`team_parallel_for_schedule`] and
//! [`team_parallel_reduce`] mirror the scoped-thread API on top of a team,
//! including chunk-stealing dynamic scheduling.
//!
//! [`team_threads_spawned`] counts every worker ever spawned process-wide,
//! so tests can assert that back-to-back regions reuse one pool instead of
//! respawning.

use crate::pool::{chunk_ranges, Schedule};
use std::collections::HashMap;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

static TEAM_THREADS_SPAWNED: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of worker threads ever spawned by [`ThreadTeam`]s.
/// Tests diff this around adjacent parallel regions to assert the team is
/// reused, not respawned.
pub fn team_threads_spawned() -> u64 {
    TEAM_THREADS_SPAWNED.load(Ordering::Relaxed)
}

/// The closure every worker of one region runs; raw pointer so the borrow
/// can cross the (pre-spawned) thread boundary.  Safety argument in
/// [`ThreadTeam::run`].
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is Sync and `run` keeps the borrow alive until every
// worker has finished with it.
unsafe impl Send for Job {}

struct TeamState {
    job: Option<Job>,
    epoch: u64,
    remaining: usize,
    panicked: bool,
    shutdown: bool,
}

struct TeamShared {
    state: Mutex<TeamState>,
    work: Condvar,
    done: Condvar,
}

/// A fixed-size team of persistent worker threads.
///
/// Workers are spawned in [`ThreadTeam::new`] and live until the team is
/// dropped; each [`run`](ThreadTeam::run) wakes all of them for one region.
/// A team of size ≤ 1 spawns no threads and runs regions inline.
pub struct ThreadTeam {
    shared: Arc<TeamShared>,
    handles: Vec<JoinHandle<()>>,
    size: usize,
}

impl ThreadTeam {
    /// Spawns a team of `size` workers (`size <= 1` spawns none).
    pub fn new(size: usize) -> ThreadTeam {
        let size = size.max(1);
        let shared = Arc::new(TeamShared {
            state: Mutex::new(TeamState {
                job: None,
                epoch: 0,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let mut handles = Vec::new();
        if size > 1 {
            for index in 0..size {
                let shared = Arc::clone(&shared);
                TEAM_THREADS_SPAWNED.fetch_add(1, Ordering::Relaxed);
                handles.push(std::thread::spawn(move || worker_loop(&shared, index)));
            }
        }
        ThreadTeam {
            shared,
            handles,
            size,
        }
    }

    /// Number of logical workers (regions split their work `size` ways).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Runs one parallel region: every worker executes `f(worker_index)`
    /// once, and `run` returns when all of them have finished.  Panics in a
    /// worker are re-raised here after the region completes.
    pub fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        if self.handles.is_empty() {
            f(0);
            return;
        }
        let mut st = self.shared.state.lock().unwrap();
        // A real assert, not a debug one: the 'static transmute below is
        // only sound while regions never overlap, so the invariant must
        // hold in release builds too.
        assert!(st.job.is_none(), "overlapping team regions");
        // The transmute erases the borrow's lifetime; `run` blocks below
        // until `remaining == 0`, i.e. until every worker has returned from
        // `f`, so the pointee outlives all uses.
        let erased: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        st.job = Some(Job(erased as *const (dyn Fn(usize) + Sync)));
        st.epoch += 1;
        st.remaining = self.handles.len();
        st.panicked = false;
        self.shared.work.notify_all();
        while st.remaining > 0 {
            st = self.shared.done.wait(st).unwrap();
        }
        st.job = None;
        let panicked = st.panicked;
        drop(st);
        if panicked {
            panic!("worker thread panicked");
        }
    }
}

impl Drop for ThreadTeam {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &TeamShared, index: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break st.job.as_ref().expect("epoch advanced without a job").0;
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        // SAFETY: `run` keeps the closure alive until this worker (and all
        // others) decrement `remaining` below.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*job)(index) }));
        let mut st = shared.state.lock().unwrap();
        if result.is_err() {
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_one();
        }
    }
}

/// The process-wide team registry behind [`with_shared_team`] and
/// [`with_shared_team_in`]: one persistent team per `(group, size)` key.
type TeamRegistry = Mutex<HashMap<(usize, usize), Arc<Mutex<ThreadTeam>>>>;
static SHARED_TEAMS: OnceLock<TeamRegistry> = OnceLock::new();

/// Runs `f` against a **process-wide** persistent team of `size` workers.
///
/// The first caller for a given size spawns the team; every later caller —
/// including later *runs* in the same process, e.g. repeated `sspar run`
/// invocations through the library — reuses it, so no parallel region
/// after the first pays a spawn/join cycle ([`team_threads_spawned`] stays
/// flat).  Teams park between regions and live for the process lifetime.
///
/// Each team is guarded by its own mutex for the duration of `f`
/// (a [`ThreadTeam`] runs one region at a time): concurrent callers
/// wanting the same size serialize on that team, while callers of
/// different sizes proceed in parallel.  A panic inside `f` (e.g. a
/// propagated worker panic) poisons neither invariant: the team survives
/// panicked regions by construction, so the lock is simply recovered.
///
/// This is [`with_shared_team_in`] for group 0 — callers that want
/// several *independent* teams of the same size (one per shard of a
/// server, say) pass distinct group keys there instead of serializing on
/// this one.
pub fn with_shared_team<R>(size: usize, f: impl FnOnce(&ThreadTeam) -> R) -> R {
    with_shared_team_in(0, size, f)
}

/// Runs `f` against the process-wide persistent team keyed by
/// `(group, size)`.
///
/// Distinct groups hold distinct teams even at equal sizes, so concurrent
/// callers mapped to different groups never serialize on one team's
/// region mutex — this is the sharding primitive `sspard` builds on (one
/// team per shard, requests hashed to shards).  Within one group the
/// semantics are exactly [`with_shared_team`]: spawn on first use, park
/// between regions, survive panicked regions, live for the process
/// lifetime.
pub fn with_shared_team_in<R>(group: usize, size: usize, f: impl FnOnce(&ThreadTeam) -> R) -> R {
    let registry = SHARED_TEAMS.get_or_init(|| Mutex::new(HashMap::new()));
    let team = {
        let mut map = registry.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry((group, size.max(1)))
                .or_insert_with(|| Arc::new(Mutex::new(ThreadTeam::new(size)))),
        )
    };
    let guard = team.lock().unwrap_or_else(|e| e.into_inner());
    f(&guard)
}

/// Number of distinct persistent teams the process-wide registry holds
/// (across all groups and sizes) — surfaced by long-running services'
/// stats endpoints.
pub fn shared_team_count() -> usize {
    SHARED_TEAMS
        .get()
        .map(|m| m.lock().unwrap_or_else(|e| e.into_inner()).len())
        .unwrap_or(0)
}

/// [`crate::pool::parallel_for_schedule`] on a persistent team: runs
/// `body(range)` over `0..n` under `schedule`, splitting the space
/// `team.size()` ways (static) or letting workers steal chunks (dynamic).
pub fn team_parallel_for_schedule<F>(team: &ThreadTeam, n: usize, schedule: Schedule, body: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if team.size() <= 1 || n == 0 {
        body(0..n);
        return;
    }
    match schedule {
        Schedule::Static => {
            let ranges = chunk_ranges(n, team.size());
            team.run(&|w| {
                let r = ranges[w].clone();
                if !r.is_empty() {
                    body(r);
                }
            });
        }
        Schedule::Dynamic { chunk } => {
            let chunk = chunk.max(1);
            let next = AtomicUsize::new(0);
            team.run(&|_| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                body(start..(start + chunk).min(n));
            });
        }
    }
}

/// [`crate::pool::parallel_reduce`] on a persistent team: every worker
/// folds the ranges it executes into a private partial starting from
/// `identity`; partials are merged with `combine` in worker order once the
/// region completes.  `combine` must be associative and commutative for
/// the merge to reproduce the serial result — the same contract as the
/// scoped-thread version.
pub fn team_parallel_reduce<T, F, C>(
    team: &ThreadTeam,
    n: usize,
    schedule: Schedule,
    identity: T,
    body: F,
    combine: C,
) -> T
where
    T: Clone + Send,
    F: Fn(Range<usize>, T) -> T + Sync,
    C: Fn(T, T) -> T,
{
    if team.size() <= 1 || n == 0 {
        return body(0..n, identity);
    }
    // Each worker's slot is pre-seeded with its own identity clone (taken
    // and put back by that worker alone), so `T` needs only `Send`.
    let slots: Vec<Mutex<Option<T>>> = (0..team.size())
        .map(|_| Mutex::new(Some(identity.clone())))
        .collect();
    match schedule {
        Schedule::Static => {
            let ranges = chunk_ranges(n, team.size());
            team.run(&|w| {
                let id = slots[w].lock().unwrap().take().expect("seeded identity");
                let acc = body(ranges[w].clone(), id);
                *slots[w].lock().unwrap() = Some(acc);
            });
        }
        Schedule::Dynamic { chunk } => {
            let chunk = chunk.max(1);
            let next = AtomicUsize::new(0);
            team.run(&|w| {
                let mut acc = slots[w].lock().unwrap().take().expect("seeded identity");
                loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    acc = body(start..(start + chunk).min(n), acc);
                }
                *slots[w].lock().unwrap() = Some(acc);
            });
        }
    }
    let mut it = slots.into_iter().filter_map(|s| s.into_inner().unwrap());
    let first = it.next().expect("at least one worker partial");
    it.fold(first, combine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn a_team_survives_back_to_back_regions_without_respawning() {
        let team = ThreadTeam::new(4);
        let spawned_after_creation = team_threads_spawned();
        let hits = AtomicU32::new(0);
        for _ in 0..50 {
            team_parallel_for_schedule(&team, 100, Schedule::Static, |r| {
                hits.fetch_add(r.len() as u32, Ordering::Relaxed);
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 50 * 100);
        assert_eq!(
            team_threads_spawned(),
            spawned_after_creation,
            "50 adjacent regions must not spawn a single extra thread"
        );
    }

    #[test]
    fn team_of_one_runs_inline_and_spawns_nothing() {
        let before = team_threads_spawned();
        let team = ThreadTeam::new(1);
        assert_eq!(team_threads_spawned(), before);
        let sum = std::sync::Mutex::new(0u64);
        team_parallel_for_schedule(&team, 10, Schedule::Static, |r| {
            *sum.lock().unwrap() += r.len() as u64;
        });
        assert_eq!(*sum.lock().unwrap(), 10);
    }

    #[test]
    fn team_reduce_matches_scoped_reduce_for_both_schedules() {
        let n = 10_000usize;
        let term = |i: usize| ((i as i64).wrapping_mul(0x9e37) % 1001) - 500;
        let expected_sum: i64 = (0..n).map(term).sum();
        let expected_min: i64 = (0..n).map(term).min().unwrap();
        for threads in [1usize, 2, 3, 8] {
            let team = ThreadTeam::new(threads);
            for schedule in [
                Schedule::Static,
                Schedule::Dynamic { chunk: 7 },
                Schedule::dynamic_for(n, threads),
            ] {
                let sum = team_parallel_reduce(
                    &team,
                    n,
                    schedule,
                    0i64,
                    |r, acc| r.fold(acc, |a, i| a.wrapping_add(term(i))),
                    |a, b| a.wrapping_add(b),
                );
                assert_eq!(sum, expected_sum, "threads={threads} {schedule:?}");
                let min = team_parallel_reduce(
                    &team,
                    n,
                    schedule,
                    i64::MAX,
                    |r, acc| r.fold(acc, |a, i| a.min(term(i))),
                    |a: i64, b| a.min(b),
                );
                assert_eq!(min, expected_min);
            }
        }
    }

    #[test]
    fn dynamic_stealing_on_a_team_covers_every_iteration_exactly_once() {
        for (n, threads, chunk) in [
            (0usize, 4usize, 3usize),
            (1, 4, 3),
            (97, 3, 5),
            (1000, 4, 1),
        ] {
            let team = ThreadTeam::new(threads);
            let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
            team_parallel_for_schedule(&team, n, Schedule::Dynamic { chunk }, |r| {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "n={n} threads={threads} chunk={chunk}"
            );
        }
    }

    #[test]
    fn chunk_stealing_and_static_agree_under_adversarial_skew() {
        // One iteration (the last) carries ~all the work; every other
        // iteration is trivial.  Whatever the schedule and whoever steals
        // what, the reduction and the element-wise results must be
        // bit-identical to the serial ones.
        let n = 513usize;
        let work = |i: usize| -> i64 {
            let rounds = if i == n - 1 { 40_000 } else { 1 };
            let mut acc = i as i64;
            for _ in 0..rounds {
                acc = acc
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            acc
        };
        let expected: i64 = (0..n).map(work).fold(0i64, |a, b| a.wrapping_add(b));
        for threads in [2usize, 3, 8] {
            let team = ThreadTeam::new(threads);
            for schedule in [Schedule::Static, Schedule::Dynamic { chunk: 1 }] {
                let got = team_parallel_reduce(
                    &team,
                    n,
                    schedule,
                    0i64,
                    |r, acc| r.fold(acc, |a, i| a.wrapping_add(work(i))),
                    |a, b| a.wrapping_add(b),
                );
                assert_eq!(got, expected, "threads={threads} {schedule:?}");
            }
        }
    }

    #[test]
    fn shared_teams_are_reused_across_calls_and_survive_panics() {
        // Use an unusual size so no other test in this binary registers it.
        let size = 5;
        let before = team_threads_spawned();
        let first = with_shared_team(size, |t| {
            assert_eq!(t.size(), size);
            team_threads_spawned()
        });
        assert_eq!(first, before + size as u64, "first caller spawns the team");
        for _ in 0..10 {
            let sum = with_shared_team(size, |t| {
                team_parallel_reduce(
                    t,
                    1000,
                    Schedule::Static,
                    0i64,
                    |r, acc| r.fold(acc, |a, i| a + i as i64),
                    |a, b| a + b,
                )
            });
            assert_eq!(sum, (0..1000i64).sum::<i64>());
        }
        assert_eq!(
            team_threads_spawned(),
            first,
            "every later caller reuses the registered team"
        );
        // A panicked region must not wedge the registry or the team.
        let r = std::panic::catch_unwind(|| {
            with_shared_team(size, |t| t.run(&|_| panic!("boom")));
        });
        assert!(r.is_err());
        let hits = AtomicU32::new(0);
        with_shared_team(size, |t| {
            t.run(&|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            })
        });
        assert_eq!(hits.load(Ordering::Relaxed), size as u32);
        assert_eq!(team_threads_spawned(), first);
    }

    #[test]
    fn distinct_groups_hold_distinct_teams_of_the_same_size() {
        // Unusual size so no other test in this binary registers it.
        let size = 6;
        let before = team_threads_spawned();
        with_shared_team_in(100, size, |t| assert_eq!(t.size(), size));
        let after_first = team_threads_spawned();
        assert_eq!(after_first, before + size as u64);
        // A different group at the same size spawns its own team…
        with_shared_team_in(101, size, |t| assert_eq!(t.size(), size));
        assert_eq!(team_threads_spawned(), after_first + size as u64);
        // …and both are reused thereafter.
        for group in [100, 101] {
            let sum = with_shared_team_in(group, size, |t| {
                team_parallel_reduce(
                    t,
                    500,
                    Schedule::Static,
                    0i64,
                    |r, acc| r.fold(acc, |a, i| a + i as i64),
                    |a, b| a + b,
                )
            });
            assert_eq!(sum, (0..500i64).sum::<i64>());
        }
        assert_eq!(team_threads_spawned(), after_first + size as u64);
        assert!(shared_team_count() >= 2);
    }

    #[test]
    #[should_panic(expected = "worker thread panicked")]
    fn worker_panics_propagate_to_the_caller() {
        let team = ThreadTeam::new(2);
        team.run(&|w| {
            if w == 1 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn a_team_still_works_after_a_panicked_region() {
        let team = ThreadTeam::new(2);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            team.run(&|_| panic!("boom"));
        }));
        assert!(r.is_err());
        let hits = AtomicU32::new(0);
        team.run(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }
}
