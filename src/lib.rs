//! Umbrella crate for the subscripted-subscripts reproduction.
//!
//! Re-exports every workspace crate under one roof so the integration tests
//! in `tests/`, the runnable examples in `examples/` and downstream users
//! have a single dependency to point at.  See the README for the crate
//! graph; each `ss_*` module below is an independently usable crate.
//!
//! The stable embeddable surface — [`Session`], [`RunRequest`],
//! [`RunOutcome`], the [`Engine`] registry and the unified [`SsError`] —
//! is re-exported at the root: `use subscripted_subscripts::Session;` is
//! all an embedder needs.

pub use ss_interp::{
    Engine, EngineCaps, EngineRegistry, RunOutcome, RunRequest, Session, SsError, ValidationMode,
};

pub use ss_aggregation as aggregation;
pub use ss_bench as bench;
pub use ss_cli as cli;
pub use ss_daemon as daemon;
pub use ss_deptest as deptest;
pub use ss_inspector as inspector;
pub use ss_interp as interp;
pub use ss_ir as ir;
pub use ss_npb as npb;
pub use ss_parallelizer as parallelizer;
pub use ss_properties as properties;
pub use ss_rangeprop as rangeprop;
pub use ss_runtime as runtime;
pub use ss_symbolic as symbolic;
